//! The TLS record layer: framing, sequence numbers, fragmentation at
//! 16 KB (§2.1), and AES-128-CBC + HMAC-SHA1 record protection routed
//! through the [`CryptoProvider`] (so record crypto is offloadable, as in
//! the paper's secure-data-transfer evaluation).
//!
//! Simplification vs RFC 5246: the MAC additional data covers
//! `seq || type || version` (the plaintext length is protected implicitly
//! by the MAC over the content plus the padding check).

use crate::codec::Reader;
use crate::error::TlsError;
use crate::provider::{CryptoProvider, OpCounters};
use crate::suite::sizes;
use qtls_crypto::EntropySource;

/// Record content types (RFC values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ContentType {
    /// ChangeCipherSpec.
    ChangeCipherSpec = 20,
    /// Alert.
    Alert = 21,
    /// Handshake.
    Handshake = 22,
    /// ApplicationData.
    ApplicationData = 23,
}

impl ContentType {
    fn from_u8(v: u8) -> Result<Self, TlsError> {
        Ok(match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            _ => return Err(TlsError::Decode("unknown content type")),
        })
    }
}

/// Keys protecting one direction.
#[derive(Clone)]
pub struct DirectionKeys {
    /// HMAC-SHA1 key.
    pub mac_key: Vec<u8>,
    /// AES-128 key.
    pub enc_key: [u8; 16],
}

/// One direction's record protection state.
struct CipherState {
    keys: DirectionKeys,
    seq: u64,
}

/// The record layer of one connection end.
pub struct RecordLayer {
    version: u16,
    write: Option<CipherState>,
    read: Option<CipherState>,
    in_buf: Vec<u8>,
}

/// Record header: type (1) + version (2) + length (2).
const HEADER_LEN: usize = 5;

impl RecordLayer {
    /// Fresh (plaintext) record layer.
    pub fn new(version: u16) -> Self {
        RecordLayer {
            version,
            write: None,
            read: None,
            in_buf: Vec::new(),
        }
    }

    /// Activate write protection (our ChangeCipherSpec point).
    pub fn set_write_keys(&mut self, keys: DirectionKeys) {
        self.write = Some(CipherState { keys, seq: 0 });
    }

    /// Activate read protection (peer's ChangeCipherSpec point).
    pub fn set_read_keys(&mut self, keys: DirectionKeys) {
        self.read = Some(CipherState { keys, seq: 0 });
    }

    /// Is write protection active?
    pub fn write_protected(&self) -> bool {
        self.write.is_some()
    }

    /// Is read protection active?
    pub fn read_protected(&self) -> bool {
        self.read.is_some()
    }

    /// Frame (and protect, once keys are active) one record. `payload`
    /// must fit one fragment.
    pub fn write_record<R: EntropySource>(
        &mut self,
        typ: ContentType,
        payload: &[u8],
        provider: &CryptoProvider,
        counters: &mut OpCounters,
        rng: &mut R,
    ) -> Result<Vec<u8>, TlsError> {
        assert!(payload.len() <= sizes::MAX_FRAGMENT, "fragment too large");
        let body = match &mut self.write {
            None => payload.to_vec(),
            Some(state) => {
                let mut aad = Vec::with_capacity(11);
                aad.extend_from_slice(&state.seq.to_be_bytes());
                aad.push(typ as u8);
                aad.extend_from_slice(&self.version.to_be_bytes());
                let mut iv = [0u8; 16];
                rng.fill(&mut iv);
                let ct = provider.cipher_encrypt(
                    counters,
                    state.keys.enc_key,
                    &state.keys.mac_key,
                    iv,
                    payload,
                    &aad,
                )?;
                state.seq += 1;
                let mut body = Vec::with_capacity(16 + ct.len());
                body.extend_from_slice(&iv);
                body.extend_from_slice(&ct);
                body
            }
        };
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.push(typ as u8);
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Fragment `data` into records of at most 16 KB each (§2.1: "the
    /// data object is fragmented into units of 16KB").
    pub fn write_fragmented<R: EntropySource>(
        &mut self,
        typ: ContentType,
        data: &[u8],
        provider: &CryptoProvider,
        counters: &mut OpCounters,
        rng: &mut R,
    ) -> Result<Vec<u8>, TlsError> {
        let mut out = Vec::with_capacity(data.len() + 64);
        if data.is_empty() {
            return self.write_record(typ, data, provider, counters, rng);
        }
        for chunk in data.chunks(sizes::MAX_FRAGMENT) {
            out.extend_from_slice(&self.write_record(typ, chunk, provider, counters, rng)?);
        }
        Ok(out)
    }

    /// Buffer incoming raw bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.in_buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.in_buf.len()
    }

    /// Extract and (if protected) decrypt the next complete record.
    /// Returns `None` when more bytes are needed.
    pub fn next_record(
        &mut self,
        provider: &CryptoProvider,
        counters: &mut OpCounters,
    ) -> Result<Option<(ContentType, Vec<u8>)>, TlsError> {
        if self.in_buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut r = Reader::new(&self.in_buf);
        let typ = ContentType::from_u8(r.u8()?)?;
        let version = r.u16()?;
        if version != self.version {
            return Err(TlsError::Decode("record version mismatch"));
        }
        let len = r.u16()? as usize;
        if self.in_buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let body: Vec<u8> = self.in_buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.in_buf.drain(..HEADER_LEN + len);
        let payload = match &mut self.read {
            None => body,
            Some(state) => {
                if body.len() < 16 {
                    return Err(TlsError::Decode("protected record too short"));
                }
                let mut aad = Vec::with_capacity(11);
                aad.extend_from_slice(&state.seq.to_be_bytes());
                aad.push(typ as u8);
                aad.extend_from_slice(&self.version.to_be_bytes());
                let iv: [u8; 16] = body[..16].try_into().unwrap();
                let pt = provider.cipher_decrypt(
                    counters,
                    state.keys.enc_key,
                    &state.keys.mac_key,
                    iv,
                    &body[16..],
                    &aad,
                )?;
                state.seq += 1;
                pt
            }
        };
        Ok(Some((typ, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtls_crypto::TestRng;

    fn keys(seed: u8) -> DirectionKeys {
        DirectionKeys {
            mac_key: vec![seed; 20],
            enc_key: [seed; 16],
        }
    }

    fn pipe() -> (
        RecordLayer,
        RecordLayer,
        CryptoProvider,
        OpCounters,
        TestRng,
    ) {
        (
            RecordLayer::new(0x0303),
            RecordLayer::new(0x0303),
            CryptoProvider::Software,
            OpCounters::default(),
            TestRng::new(1),
        )
    }

    #[test]
    fn plaintext_roundtrip() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        let rec = tx
            .write_record(ContentType::Handshake, b"hello", &p, &mut c, &mut rng)
            .unwrap();
        rx.feed(&rec);
        let (typ, payload) = rx.next_record(&p, &mut c).unwrap().unwrap();
        assert_eq!(typ, ContentType::Handshake);
        assert_eq!(payload, b"hello");
        assert_eq!(c.cipher, 0, "no crypto before keys");
    }

    #[test]
    fn encrypted_roundtrip() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        tx.set_write_keys(keys(5));
        rx.set_read_keys(keys(5));
        let rec = tx
            .write_record(
                ContentType::ApplicationData,
                b"secret data",
                &p,
                &mut c,
                &mut rng,
            )
            .unwrap();
        assert!(
            !rec.windows(11).any(|w| w == b"secret data"),
            "must be encrypted"
        );
        rx.feed(&rec);
        let (typ, payload) = rx.next_record(&p, &mut c).unwrap().unwrap();
        assert_eq!(typ, ContentType::ApplicationData);
        assert_eq!(payload, b"secret data");
        assert_eq!(c.cipher, 2);
    }

    #[test]
    fn sequence_numbers_prevent_replay() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        tx.set_write_keys(keys(5));
        rx.set_read_keys(keys(5));
        let rec = tx
            .write_record(ContentType::ApplicationData, b"msg", &p, &mut c, &mut rng)
            .unwrap();
        rx.feed(&rec);
        rx.next_record(&p, &mut c).unwrap().unwrap();
        // Replaying the identical record must fail the MAC (seq advanced).
        rx.feed(&rec);
        assert!(rx.next_record(&p, &mut c).is_err());
    }

    #[test]
    fn partial_records_buffer() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        let rec = tx
            .write_record(ContentType::Handshake, b"abcdef", &p, &mut c, &mut rng)
            .unwrap();
        for b in &rec[..rec.len() - 1] {
            rx.feed(&[*b]);
            // (may yield None repeatedly)
        }
        assert!(rx.next_record(&p, &mut c).unwrap().is_none());
        rx.feed(&rec[rec.len() - 1..]);
        assert!(rx.next_record(&p, &mut c).unwrap().is_some());
    }

    #[test]
    fn fragmentation_at_16kb() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        tx.set_write_keys(keys(9));
        rx.set_read_keys(keys(9));
        let data = vec![0x5au8; 40 * 1024]; // 40 KB -> 3 records
        let stream = tx
            .write_fragmented(ContentType::ApplicationData, &data, &p, &mut c, &mut rng)
            .unwrap();
        assert_eq!(c.cipher, 3, "40KB must become 3 cipher ops (16+16+8)");
        rx.feed(&stream);
        let mut got = Vec::new();
        while let Some((_, payload)) = rx.next_record(&p, &mut c).unwrap() {
            got.extend_from_slice(&payload);
        }
        assert_eq!(got, data);
    }

    #[test]
    fn tampering_detected() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        tx.set_write_keys(keys(5));
        rx.set_read_keys(keys(5));
        let mut rec = tx
            .write_record(
                ContentType::ApplicationData,
                b"payload!",
                &p,
                &mut c,
                &mut rng,
            )
            .unwrap();
        let n = rec.len();
        rec[n - 1] ^= 0x01;
        rx.feed(&rec);
        assert!(rx.next_record(&p, &mut c).is_err());
    }

    #[test]
    fn wrong_keys_fail() {
        let (mut tx, mut rx, p, mut c, mut rng) = pipe();
        tx.set_write_keys(keys(5));
        rx.set_read_keys(keys(6));
        let rec = tx
            .write_record(ContentType::ApplicationData, b"x", &p, &mut c, &mut rng)
            .unwrap();
        rx.feed(&rec);
        assert!(rx.next_record(&p, &mut c).is_err());
    }
}
