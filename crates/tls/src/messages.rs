//! Handshake messages and their wire encoding.
//!
//! Framing follows real TLS (1-byte handshake type + 24-bit length);
//! message bodies keep the same field structure as the RFCs but use a
//! simplified certificate (a bare public key instead of an X.509 chain) —
//! the reproduction interoperates with its own client, and certificate
//! parsing is orthogonal to the paper's contribution.

use crate::codec::{put_u16, put_u24, put_u8, put_vec16, put_vec8, Reader};
use crate::error::TlsError;
use crate::suite::{sizes, CipherSuite, Version};

/// Handshake message type codes (RFC values where they exist).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HandshakeType {
    /// ClientHello.
    ClientHello = 1,
    /// ServerHello.
    ServerHello = 2,
    /// NewSessionTicket.
    NewSessionTicket = 4,
    /// EncryptedExtensions (TLS 1.3).
    EncryptedExtensions = 8,
    /// Certificate.
    Certificate = 11,
    /// ServerKeyExchange (TLS 1.2).
    ServerKeyExchange = 12,
    /// ServerHelloDone (TLS 1.2).
    ServerHelloDone = 14,
    /// CertificateVerify (TLS 1.3).
    CertificateVerify = 15,
    /// ClientKeyExchange (TLS 1.2).
    ClientKeyExchange = 16,
    /// Finished.
    Finished = 20,
}

impl HandshakeType {
    fn from_u8(v: u8) -> Result<Self, TlsError> {
        Ok(match v {
            1 => HandshakeType::ClientHello,
            2 => HandshakeType::ServerHello,
            4 => HandshakeType::NewSessionTicket,
            8 => HandshakeType::EncryptedExtensions,
            11 => HandshakeType::Certificate,
            12 => HandshakeType::ServerKeyExchange,
            14 => HandshakeType::ServerHelloDone,
            15 => HandshakeType::CertificateVerify,
            16 => HandshakeType::ClientKeyExchange,
            20 => HandshakeType::Finished,
            _ => return Err(TlsError::Decode("unknown handshake type")),
        })
    }
}

/// The simplified certificate payload: a bare server public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertPayload {
    /// RSA public key `(n, e)` as big-endian bytes.
    Rsa {
        /// Modulus.
        n: Vec<u8>,
        /// Public exponent.
        e: Vec<u8>,
    },
    /// EC public key.
    Ecdsa {
        /// IANA curve id.
        curve: u16,
        /// X9.62 uncompressed point.
        point: Vec<u8>,
    },
}

/// `psk_key_exchange_modes` value: PSK with (EC)DHE key establishment
/// (RFC 8446 §4.2.9) — the only mode this stack offers.
pub const PSK_DHE_KE: u8 = 1;

/// TLS 1.3 `pre_shared_key` offer (with `psk_key_exchange_modes`),
/// carried as a single simplified extension. Per RFC 8446 the binder
/// is encoded *last* in the ClientHello so the server can verify it
/// over a transcript with the binder bytes zeroed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PskOffer {
    /// PSK identity: the NewSessionTicket bytes from a prior session.
    pub identity: Vec<u8>,
    /// Offered key-exchange modes bitmask ([`PSK_DHE_KE`]).
    pub modes: u8,
    /// HMAC binder over the partial ClientHello transcript.
    pub binder: Vec<u8>,
}

/// ClientHello.
#[derive(Clone, Debug)]
pub struct ClientHello {
    /// Highest supported version.
    pub version: Version,
    /// Client random.
    pub random: [u8; sizes::RANDOM_LEN],
    /// Session id for ID-based resumption (empty = none).
    pub session_id: Vec<u8>,
    /// Offered cipher suites.
    pub suites: Vec<u16>,
    /// Offered curves (supported-groups extension).
    pub curves: Vec<u16>,
    /// Session ticket for ticket-based resumption.
    pub ticket: Option<Vec<u8>>,
    /// TLS 1.3 key share: (curve id, public point).
    pub key_share: Option<(u16, Vec<u8>)>,
    /// TLS 1.3 `pre_shared_key` offer (resumption PSK).
    pub psk: Option<PskOffer>,
}

/// ServerHello.
#[derive(Clone, Debug)]
pub struct ServerHello {
    /// Selected version.
    pub version: Version,
    /// Server random.
    pub random: [u8; sizes::RANDOM_LEN],
    /// Echoed/assigned session id.
    pub session_id: Vec<u8>,
    /// Selected suite.
    pub suite: CipherSuite,
    /// TLS 1.3 key share.
    pub key_share: Option<(u16, Vec<u8>)>,
    /// TLS 1.3 `pre_shared_key` acceptance: index of the selected PSK
    /// identity (always 0 — one identity is offered).
    pub selected_psk: Option<u16>,
}

/// ServerKeyExchange (TLS 1.2 ECDHE): curve params + ephemeral public +
/// signature over (client_random || server_random || params).
#[derive(Clone, Debug)]
pub struct ServerKeyExchange {
    /// IANA curve id.
    pub curve: u16,
    /// Ephemeral public point.
    pub public: Vec<u8>,
    /// Signature (RSA PKCS#1 or fixed-width ECDSA).
    pub signature: Vec<u8>,
}

/// ClientKeyExchange: RSA-encrypted premaster, or the client's ECDHE
/// public point.
#[derive(Clone, Debug)]
pub struct ClientKeyExchange {
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Finished.
#[derive(Clone, Debug)]
pub struct Finished {
    /// PRF/HKDF-derived verify data over the transcript.
    pub verify_data: Vec<u8>,
}

/// NewSessionTicket.
#[derive(Clone, Debug)]
pub struct NewSessionTicket {
    /// Opaque (encrypted) ticket.
    pub ticket: Vec<u8>,
}

/// CertificateVerify (TLS 1.3): signature over the transcript hash.
#[derive(Clone, Debug)]
pub struct CertificateVerify {
    /// Signature bytes.
    pub signature: Vec<u8>,
}

/// Any handshake message.
#[derive(Clone, Debug)]
pub enum HandshakeMsg {
    /// ClientHello.
    ClientHello(ClientHello),
    /// ServerHello.
    ServerHello(ServerHello),
    /// Certificate.
    Certificate(CertPayload),
    /// ServerKeyExchange.
    ServerKeyExchange(ServerKeyExchange),
    /// ServerHelloDone.
    ServerHelloDone,
    /// ClientKeyExchange.
    ClientKeyExchange(ClientKeyExchange),
    /// Finished.
    Finished(Finished),
    /// NewSessionTicket.
    NewSessionTicket(NewSessionTicket),
    /// EncryptedExtensions (TLS 1.3).
    EncryptedExtensions,
    /// CertificateVerify (TLS 1.3).
    CertificateVerify(CertificateVerify),
}

impl HandshakeMsg {
    /// The message's type code.
    pub fn typ(&self) -> HandshakeType {
        match self {
            HandshakeMsg::ClientHello(_) => HandshakeType::ClientHello,
            HandshakeMsg::ServerHello(_) => HandshakeType::ServerHello,
            HandshakeMsg::Certificate(_) => HandshakeType::Certificate,
            HandshakeMsg::ServerKeyExchange(_) => HandshakeType::ServerKeyExchange,
            HandshakeMsg::ServerHelloDone => HandshakeType::ServerHelloDone,
            HandshakeMsg::ClientKeyExchange(_) => HandshakeType::ClientKeyExchange,
            HandshakeMsg::Finished(_) => HandshakeType::Finished,
            HandshakeMsg::NewSessionTicket(_) => HandshakeType::NewSessionTicket,
            HandshakeMsg::EncryptedExtensions => HandshakeType::EncryptedExtensions,
            HandshakeMsg::CertificateVerify(_) => HandshakeType::CertificateVerify,
        }
    }

    /// Short name for error reporting.
    pub fn name(&self) -> &'static str {
        match self {
            HandshakeMsg::ClientHello(_) => "ClientHello",
            HandshakeMsg::ServerHello(_) => "ServerHello",
            HandshakeMsg::Certificate(_) => "Certificate",
            HandshakeMsg::ServerKeyExchange(_) => "ServerKeyExchange",
            HandshakeMsg::ServerHelloDone => "ServerHelloDone",
            HandshakeMsg::ClientKeyExchange(_) => "ClientKeyExchange",
            HandshakeMsg::Finished(_) => "Finished",
            HandshakeMsg::NewSessionTicket(_) => "NewSessionTicket",
            HandshakeMsg::EncryptedExtensions => "EncryptedExtensions",
            HandshakeMsg::CertificateVerify(_) => "CertificateVerify",
        }
    }

    /// Encode with the 4-byte handshake header (type + u24 length).
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(4 + body.len());
        put_u8(&mut out, self.typ() as u8);
        put_u24(&mut out, body.len());
        out.extend_from_slice(&body);
        out
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            HandshakeMsg::ClientHello(ch) => {
                put_u16(&mut b, ch.version.wire());
                b.extend_from_slice(&ch.random);
                put_vec8(&mut b, &ch.session_id);
                put_u16(&mut b, (ch.suites.len() * 2) as u16);
                for s in &ch.suites {
                    put_u16(&mut b, *s);
                }
                put_u16(&mut b, (ch.curves.len() * 2) as u16);
                for c in &ch.curves {
                    put_u16(&mut b, *c);
                }
                match &ch.ticket {
                    Some(t) => {
                        put_u8(&mut b, 1);
                        put_vec16(&mut b, t);
                    }
                    None => put_u8(&mut b, 0),
                }
                match &ch.key_share {
                    Some((curve, point)) => {
                        put_u8(&mut b, 1);
                        put_u16(&mut b, *curve);
                        put_vec16(&mut b, point);
                    }
                    None => put_u8(&mut b, 0),
                }
                match &ch.psk {
                    Some(psk) => {
                        put_u8(&mut b, 1);
                        put_u8(&mut b, psk.modes);
                        put_vec16(&mut b, &psk.identity);
                        // Binder last: the server verifies it over the
                        // encoding with these trailing bytes zeroed.
                        put_vec8(&mut b, &psk.binder);
                    }
                    None => put_u8(&mut b, 0),
                }
            }
            HandshakeMsg::ServerHello(sh) => {
                put_u16(&mut b, sh.version.wire());
                b.extend_from_slice(&sh.random);
                put_vec8(&mut b, &sh.session_id);
                put_u16(&mut b, sh.suite.wire());
                match &sh.key_share {
                    Some((curve, point)) => {
                        put_u8(&mut b, 1);
                        put_u16(&mut b, *curve);
                        put_vec16(&mut b, point);
                    }
                    None => put_u8(&mut b, 0),
                }
                match &sh.selected_psk {
                    Some(idx) => {
                        put_u8(&mut b, 1);
                        put_u16(&mut b, *idx);
                    }
                    None => put_u8(&mut b, 0),
                }
            }
            HandshakeMsg::Certificate(cert) => match cert {
                CertPayload::Rsa { n, e } => {
                    put_u8(&mut b, 0);
                    put_vec16(&mut b, n);
                    put_vec16(&mut b, e);
                }
                CertPayload::Ecdsa { curve, point } => {
                    put_u8(&mut b, 1);
                    put_u16(&mut b, *curve);
                    put_vec16(&mut b, point);
                }
            },
            HandshakeMsg::ServerKeyExchange(skx) => {
                put_u16(&mut b, skx.curve);
                put_vec16(&mut b, &skx.public);
                put_vec16(&mut b, &skx.signature);
            }
            HandshakeMsg::ServerHelloDone | HandshakeMsg::EncryptedExtensions => {}
            HandshakeMsg::ClientKeyExchange(ckx) => {
                put_vec16(&mut b, &ckx.payload);
            }
            HandshakeMsg::Finished(fin) => {
                put_vec8(&mut b, &fin.verify_data);
            }
            HandshakeMsg::NewSessionTicket(t) => {
                put_vec16(&mut b, &t.ticket);
            }
            HandshakeMsg::CertificateVerify(cv) => {
                put_vec16(&mut b, &cv.signature);
            }
        }
        b
    }

    /// Decode one handshake message from `data`, returning it and the
    /// number of bytes consumed. Returns `Ok(None)` when `data` holds an
    /// incomplete message.
    pub fn decode(data: &[u8]) -> Result<Option<(HandshakeMsg, usize)>, TlsError> {
        if data.len() < 4 {
            return Ok(None);
        }
        let typ = HandshakeType::from_u8(data[0])?;
        let len = ((data[1] as usize) << 16) | ((data[2] as usize) << 8) | data[3] as usize;
        if data.len() < 4 + len {
            return Ok(None);
        }
        let mut r = Reader::new(&data[4..4 + len]);
        let msg = Self::decode_body(typ, &mut r)?;
        if !r.is_done() {
            return Err(TlsError::Decode("trailing bytes in handshake message"));
        }
        Ok(Some((msg, 4 + len)))
    }

    fn decode_body(typ: HandshakeType, r: &mut Reader<'_>) -> Result<HandshakeMsg, TlsError> {
        Ok(match typ {
            HandshakeType::ClientHello => {
                let version =
                    Version::from_wire(r.u16()?).ok_or(TlsError::Decode("unsupported version"))?;
                let random: [u8; 32] = r
                    .take(32)?
                    .try_into()
                    .map_err(|_| TlsError::Decode("random"))?;
                let session_id = r.vec8()?;
                let n = r.u16()? as usize;
                if !n.is_multiple_of(2) {
                    return Err(TlsError::Decode("odd suite list length"));
                }
                let mut suites = Vec::with_capacity(n / 2);
                for _ in 0..n / 2 {
                    suites.push(r.u16()?);
                }
                let n = r.u16()? as usize;
                if !n.is_multiple_of(2) {
                    return Err(TlsError::Decode("odd curve list length"));
                }
                let mut curves = Vec::with_capacity(n / 2);
                for _ in 0..n / 2 {
                    curves.push(r.u16()?);
                }
                let ticket = if r.u8()? == 1 { Some(r.vec16()?) } else { None };
                let key_share = if r.u8()? == 1 {
                    let curve = r.u16()?;
                    Some((curve, r.vec16()?))
                } else {
                    None
                };
                let psk = if r.u8()? == 1 {
                    let modes = r.u8()?;
                    let identity = r.vec16()?;
                    let binder = r.vec8()?;
                    Some(PskOffer {
                        identity,
                        modes,
                        binder,
                    })
                } else {
                    None
                };
                HandshakeMsg::ClientHello(ClientHello {
                    version,
                    random,
                    session_id,
                    suites,
                    curves,
                    ticket,
                    key_share,
                    psk,
                })
            }
            HandshakeType::ServerHello => {
                let version =
                    Version::from_wire(r.u16()?).ok_or(TlsError::Decode("unsupported version"))?;
                let random: [u8; 32] = r
                    .take(32)?
                    .try_into()
                    .map_err(|_| TlsError::Decode("random"))?;
                let session_id = r.vec8()?;
                let suite =
                    CipherSuite::from_wire(r.u16()?).ok_or(TlsError::Decode("unknown suite"))?;
                let key_share = if r.u8()? == 1 {
                    let curve = r.u16()?;
                    Some((curve, r.vec16()?))
                } else {
                    None
                };
                let selected_psk = if r.u8()? == 1 { Some(r.u16()?) } else { None };
                HandshakeMsg::ServerHello(ServerHello {
                    version,
                    random,
                    session_id,
                    suite,
                    key_share,
                    selected_psk,
                })
            }
            HandshakeType::Certificate => {
                let kind = r.u8()?;
                match kind {
                    0 => HandshakeMsg::Certificate(CertPayload::Rsa {
                        n: r.vec16()?,
                        e: r.vec16()?,
                    }),
                    1 => {
                        let curve = r.u16()?;
                        HandshakeMsg::Certificate(CertPayload::Ecdsa {
                            curve,
                            point: r.vec16()?,
                        })
                    }
                    _ => return Err(TlsError::Decode("unknown certificate kind")),
                }
            }
            HandshakeType::ServerKeyExchange => {
                HandshakeMsg::ServerKeyExchange(ServerKeyExchange {
                    curve: r.u16()?,
                    public: r.vec16()?,
                    signature: r.vec16()?,
                })
            }
            HandshakeType::ServerHelloDone => HandshakeMsg::ServerHelloDone,
            HandshakeType::EncryptedExtensions => HandshakeMsg::EncryptedExtensions,
            HandshakeType::ClientKeyExchange => {
                HandshakeMsg::ClientKeyExchange(ClientKeyExchange {
                    payload: r.vec16()?,
                })
            }
            HandshakeType::Finished => HandshakeMsg::Finished(Finished {
                verify_data: r.vec8()?,
            }),
            HandshakeType::NewSessionTicket => {
                HandshakeMsg::NewSessionTicket(NewSessionTicket { ticket: r.vec16()? })
            }
            HandshakeType::CertificateVerify => {
                HandshakeMsg::CertificateVerify(CertificateVerify {
                    signature: r.vec16()?,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: HandshakeMsg) -> HandshakeMsg {
        let enc = msg.encode();
        let (dec, used) = HandshakeMsg::decode(&enc).unwrap().unwrap();
        assert_eq!(used, enc.len());
        dec
    }

    #[test]
    fn client_hello_roundtrip() {
        let ch = HandshakeMsg::ClientHello(ClientHello {
            version: Version::Tls12,
            random: [7u8; 32],
            session_id: vec![1, 2, 3],
            suites: vec![0x002f, 0xc013],
            curves: vec![23, 24],
            ticket: Some(vec![9; 40]),
            key_share: None,
            psk: None,
        });
        match roundtrip(ch) {
            HandshakeMsg::ClientHello(d) => {
                assert_eq!(d.version, Version::Tls12);
                assert_eq!(d.random, [7u8; 32]);
                assert_eq!(d.session_id, vec![1, 2, 3]);
                assert_eq!(d.suites, vec![0x002f, 0xc013]);
                assert_eq!(d.curves, vec![23, 24]);
                assert_eq!(d.ticket, Some(vec![9; 40]));
                assert!(d.key_share.is_none());
                assert!(d.psk.is_none());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn client_hello_psk_roundtrip_binder_last() {
        let psk = PskOffer {
            identity: vec![0xAB; 80],
            modes: PSK_DHE_KE,
            binder: vec![0xCD; 32],
        };
        let ch = HandshakeMsg::ClientHello(ClientHello {
            version: Version::Tls13,
            random: [5u8; 32],
            session_id: vec![],
            suites: vec![0xc013],
            curves: vec![23],
            ticket: None,
            key_share: Some((23, vec![4; 65])),
            psk: Some(psk.clone()),
        });
        let enc = ch.encode();
        // The binder must be the trailing bytes of the encoding, so a
        // server can zero it to rebuild the binder transcript.
        assert_eq!(&enc[enc.len() - 32..], &[0xCD; 32][..]);
        match roundtrip(ch) {
            HandshakeMsg::ClientHello(d) => assert_eq!(d.psk, Some(psk)),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn server_hello_with_key_share() {
        let sh = HandshakeMsg::ServerHello(ServerHello {
            version: Version::Tls13,
            random: [3u8; 32],
            session_id: vec![],
            suite: CipherSuite::EcdheRsa,
            key_share: Some((23, vec![4; 65])),
            selected_psk: Some(0),
        });
        match roundtrip(sh) {
            HandshakeMsg::ServerHello(d) => {
                assert_eq!(d.version, Version::Tls13);
                assert_eq!(d.key_share, Some((23, vec![4; 65])));
                assert_eq!(d.selected_psk, Some(0));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn empty_body_messages() {
        for msg in [
            HandshakeMsg::ServerHelloDone,
            HandshakeMsg::EncryptedExtensions,
        ] {
            let enc = msg.encode();
            assert_eq!(enc.len(), 4);
            let (dec, _) = HandshakeMsg::decode(&enc).unwrap().unwrap();
            assert_eq!(dec.typ(), msg.typ());
        }
    }

    #[test]
    fn certificate_variants() {
        let rsa = HandshakeMsg::Certificate(CertPayload::Rsa {
            n: vec![1; 256],
            e: vec![1, 0, 1],
        });
        match roundtrip(rsa) {
            HandshakeMsg::Certificate(CertPayload::Rsa { n, e }) => {
                assert_eq!(n.len(), 256);
                assert_eq!(e, vec![1, 0, 1]);
            }
            other => panic!("{other:?}"),
        }
        let ec = HandshakeMsg::Certificate(CertPayload::Ecdsa {
            curve: 23,
            point: vec![4; 65],
        });
        match roundtrip(ec) {
            HandshakeMsg::Certificate(CertPayload::Ecdsa { curve, point }) => {
                assert_eq!(curve, 23);
                assert_eq!(point.len(), 65);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_returns_none() {
        let fin = HandshakeMsg::Finished(Finished {
            verify_data: vec![0xaa; 12],
        })
        .encode();
        for cut in 0..fin.len() {
            assert!(
                HandshakeMsg::decode(&fin[..cut]).unwrap().is_none(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn garbage_type_rejected() {
        assert!(HandshakeMsg::decode(&[99, 0, 0, 0]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = HandshakeMsg::ServerHelloDone.encode();
        enc[3] = 2; // claim 2 body bytes
        enc.extend_from_slice(&[0, 0]);
        assert!(HandshakeMsg::decode(&enc).is_err());
    }
}
