//! Stateless retry tokens for handshake-flood admission control (the
//! QFAM design): before a worker spends any asymmetric offload work on
//! a new ClientHello while overloaded, it challenges the client with a
//! token it can verify statelessly on the retry — an HMAC over the
//! client address and a coarse timestamp, keyed by the cluster's
//! rotating [`TicketKeyRing`] MAC key. Reusing the ticket ring means
//! key rotation is free: tokens minted just before a rotation still
//! verify under the previous key, exactly like tickets.
//!
//! A token is `timestamp_secs (8 bytes BE) || tag (16 bytes)` where
//! `tag = HMAC-SHA256(mac_key, "qtls-retry" || addr || timestamp)`
//! truncated to 128 bits. Verification is constant-time on the tag and
//! bounds the token's age by the caller's lifetime, so a flooding
//! client cannot stockpile tokens.

use crate::session::TicketKeys;
use qtls_crypto::hmac::{constant_time_eq, Hmac};
use qtls_crypto::sha256::Sha256;

/// Wire length of a retry token: 8-byte timestamp + 16-byte tag.
pub const RETRY_TOKEN_LEN: usize = 24;

/// Domain-separation prefix so a retry token can never collide with a
/// ticket MAC computed under the same key.
const RETRY_CONTEXT: &[u8] = b"qtls-retry";

fn retry_tag(keys: &TicketKeys, addr: u64, ts_secs: u64) -> [u8; 16] {
    let mut msg = [0u8; RETRY_CONTEXT.len() + 16];
    msg[..RETRY_CONTEXT.len()].copy_from_slice(RETRY_CONTEXT);
    msg[RETRY_CONTEXT.len()..RETRY_CONTEXT.len() + 8].copy_from_slice(&addr.to_be_bytes());
    msg[RETRY_CONTEXT.len() + 8..].copy_from_slice(&ts_secs.to_be_bytes());
    let full = Hmac::<Sha256>::mac(keys.mac_key(), &msg);
    let mut tag = [0u8; 16];
    tag.copy_from_slice(&full[..16]);
    tag
}

/// Mint a retry token binding `addr` to the coarse timestamp
/// `now_secs` under `keys`.
pub fn mint_token(keys: &TicketKeys, addr: u64, now_secs: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(RETRY_TOKEN_LEN);
    out.extend_from_slice(&now_secs.to_be_bytes());
    out.extend_from_slice(&retry_tag(keys, addr, now_secs));
    out
}

/// Verify a retry token against `addr`: authentic under `keys`, minted
/// no later than `now_secs`, and no older than `lifetime_secs`.
pub fn verify_token(
    keys: &TicketKeys,
    token: &[u8],
    addr: u64,
    now_secs: u64,
    lifetime_secs: u64,
) -> bool {
    if token.len() != RETRY_TOKEN_LEN {
        return false;
    }
    let ts_secs = u64::from_be_bytes(token[..8].try_into().expect("length checked"));
    if ts_secs > now_secs || now_secs - ts_secs > lifetime_secs {
        return false;
    }
    constant_time_eq(&retry_tag(keys, addr, ts_secs), &token[8..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtls_crypto::TestRng;

    fn keys(seed: u64) -> TicketKeys {
        TicketKeys::generate(&mut TestRng::new(seed))
    }

    #[test]
    fn token_round_trips() {
        let k = keys(1);
        let token = mint_token(&k, 0xC11E_0001, 1000);
        assert_eq!(token.len(), RETRY_TOKEN_LEN);
        assert!(verify_token(&k, &token, 0xC11E_0001, 1000, 30));
        // Still fresh at the lifetime boundary.
        assert!(verify_token(&k, &token, 0xC11E_0001, 1030, 30));
    }

    #[test]
    fn token_binds_the_client_address() {
        let k = keys(2);
        let token = mint_token(&k, 7, 1000);
        assert!(!verify_token(&k, &token, 8, 1000, 30));
    }

    #[test]
    fn token_expires_and_rejects_the_future() {
        let k = keys(3);
        let token = mint_token(&k, 7, 1000);
        assert!(!verify_token(&k, &token, 7, 1031, 30), "one past lifetime");
        assert!(
            !verify_token(&k, &token, 7, 999, 30),
            "minted in the future"
        );
    }

    #[test]
    fn token_rejects_tampering_and_foreign_keys() {
        let k = keys(4);
        let mut token = mint_token(&k, 7, 1000);
        token[12] ^= 1;
        assert!(!verify_token(&k, &token, 7, 1000, 30));
        let token = mint_token(&k, 7, 1000);
        assert!(!verify_token(&keys(5), &token, 7, 1000, 30));
        assert!(!verify_token(&k, &token[..20], 7, 1000, 30), "short token");
    }
}
