//! # qtls-crypto — software cryptography substrate for the QTLS reproduction
//!
//! A from-scratch implementation of every cryptographic primitive the
//! paper's TLS stack needs, standing in for OpenSSL's libcrypto:
//!
//! - [`bn`]/[`mont`]/[`prime`]: arbitrary-precision arithmetic, Montgomery
//!   exponentiation and prime generation;
//! - [`rsa`]: RSA-2048 sign/verify/encrypt/decrypt (PKCS#1 v1.5, CRT);
//! - [`fp`]/[`ec`]: prime-field ECC — NIST P-256 and P-384 (ECDHE, ECDSA);
//! - [`gf2m`]/[`ec2m`]: binary-field ECC — NIST B-283/B-409/K-283/K-409;
//! - [`ecc`]: the unified named-curve API;
//! - [`aes`]/[`sha1`]/[`sha256`]/[`hmac`]: the AES128-SHA record
//!   protection suite and signature digests;
//! - [`kdf`]: the TLS 1.2 PRF and HKDF / HKDF-Expand-Label (TLS 1.3).
//!
//! These are the operations the QAT accelerator offloads (RSA, ECC,
//! symmetric chained cipher, PRF) and the CPU computes in the `SW`
//! baseline. The implementation is validated against published test
//! vectors and group-structure checks; it is **not** hardened against
//! timing side channels and must not be used to protect real traffic.

#![warn(missing_docs)]

pub mod aes;
pub mod bn;
pub mod ec;
pub mod ec2m;
pub mod ecc;
pub mod error;
pub mod fp;
pub mod gf2m;
pub mod hash;
pub mod hmac;
pub mod kdf;
pub mod mont;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha256;
pub mod test_keys;

pub use bn::Bn;
pub use error::CryptoError;
pub use rng::{EntropySource, SystemRng, TestRng};
