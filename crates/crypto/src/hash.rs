//! A minimal streaming-hash abstraction so HMAC, the PRF and HKDF are
//! generic over the digest (SHA-1 for the record MAC, SHA-256 for key
//! derivation and signatures).

/// A streaming cryptographic hash function.
pub trait Hash: Clone {
    /// Internal block size in bytes (HMAC padding unit).
    const BLOCK_SIZE: usize;
    /// Digest length in bytes.
    const OUTPUT_SIZE: usize;

    /// Fresh state.
    fn new() -> Self;
    /// Absorb bytes.
    fn update(&mut self, data: &[u8]);
    /// Finish, producing `OUTPUT_SIZE` bytes.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience.
    fn hash(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
