//! Unified ECC API over the six NIST curves evaluated in the paper
//! (P-256, P-384, B-283, B-409, K-283, K-409): key generation, ECDH and
//! ECDSA with SHA-256.

use crate::bn::Bn;
use crate::ec::{p256, p384, AffinePoint};
use crate::ec2m::{b283, b409, k283, k409};
use crate::error::CryptoError;
use crate::rng::EntropySource;
use crate::sha256::Sha256;

/// The named curves of the paper's evaluation (Fig. 7b/7c).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NamedCurve {
    /// NIST P-256 (secp256r1) — the OpenSSL default, "Montgomery friendly".
    P256,
    /// NIST P-384 (secp384r1).
    P384,
    /// NIST B-283 (binary random curve).
    B283,
    /// NIST B-409.
    B409,
    /// NIST K-283 (Koblitz).
    K283,
    /// NIST K-409.
    K409,
}

impl NamedCurve {
    /// All six curves, in the paper's Figure 7c order.
    pub const ALL: [NamedCurve; 6] = [
        NamedCurve::P256,
        NamedCurve::P384,
        NamedCurve::B283,
        NamedCurve::B409,
        NamedCurve::K283,
        NamedCurve::K409,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            NamedCurve::P256 => "P-256",
            NamedCurve::P384 => "P-384",
            NamedCurve::B283 => "B-283",
            NamedCurve::B409 => "B-409",
            NamedCurve::K283 => "K-283",
            NamedCurve::K409 => "K-409",
        }
    }

    /// IANA "supported groups" codepoint (RFC 8422).
    pub fn iana_id(&self) -> u16 {
        match self {
            NamedCurve::P256 => 23,
            NamedCurve::P384 => 24,
            NamedCurve::B283 => 9,
            NamedCurve::B409 => 11,
            NamedCurve::K283 => 10,
            NamedCurve::K409 => 12,
        }
    }

    /// Look up by IANA codepoint.
    pub fn from_iana_id(id: u16) -> Option<Self> {
        Some(match id {
            23 => NamedCurve::P256,
            24 => NamedCurve::P384,
            9 => NamedCurve::B283,
            11 => NamedCurve::B409,
            10 => NamedCurve::K283,
            12 => NamedCurve::K409,
            _ => return None,
        })
    }

    /// Group order.
    pub fn order(&self) -> &'static Bn {
        match self {
            NamedCurve::P256 => &p256().order,
            NamedCurve::P384 => &p384().order,
            NamedCurve::B283 => &b283().order,
            NamedCurve::B409 => &b409().order,
            NamedCurve::K283 => &k283().order,
            NamedCurve::K409 => &k409().order,
        }
    }

    /// Field element encoding width in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            NamedCurve::P256 => p256().byte_len,
            NamedCurve::P384 => p384().byte_len,
            NamedCurve::B283 => b283().byte_len,
            NamedCurve::B409 => b409().byte_len,
            NamedCurve::K283 => k283().byte_len,
            NamedCurve::K409 => k409().byte_len,
        }
    }

    /// The base point.
    pub fn generator(&self) -> AffinePoint {
        match self {
            NamedCurve::P256 => p256().generator(),
            NamedCurve::P384 => p384().generator(),
            NamedCurve::B283 => b283().generator(),
            NamedCurve::B409 => b409().generator(),
            NamedCurve::K283 => k283().generator(),
            NamedCurve::K409 => k409().generator(),
        }
    }

    /// Scalar multiplication `k * pt` on this curve.
    pub fn scalar_mul(&self, pt: &AffinePoint, k: &Bn) -> AffinePoint {
        match self {
            NamedCurve::P256 => p256().scalar_mul(pt, k),
            NamedCurve::P384 => p384().scalar_mul(pt, k),
            NamedCurve::B283 => b283().scalar_mul(pt, k),
            NamedCurve::B409 => b409().scalar_mul(pt, k),
            NamedCurve::K283 => k283().scalar_mul(pt, k),
            NamedCurve::K409 => k409().scalar_mul(pt, k),
        }
    }

    /// `k * G` on this curve.
    pub fn scalar_mul_base(&self, k: &Bn) -> AffinePoint {
        match self {
            NamedCurve::P256 => p256().scalar_mul_base(k),
            NamedCurve::P384 => p384().scalar_mul_base(k),
            NamedCurve::B283 => b283().scalar_mul_base(k),
            NamedCurve::B409 => b409().scalar_mul_base(k),
            NamedCurve::K283 => k283().scalar_mul_base(k),
            NamedCurve::K409 => k409().scalar_mul_base(k),
        }
    }

    /// `u1*G + u2*Q` on this curve.
    pub fn double_scalar_mul(&self, u1: &Bn, u2: &Bn, q: &AffinePoint) -> AffinePoint {
        match self {
            NamedCurve::P256 => p256().double_scalar_mul(u1, u2, q),
            NamedCurve::P384 => p384().double_scalar_mul(u1, u2, q),
            NamedCurve::B283 => b283().double_scalar_mul(u1, u2, q),
            NamedCurve::B409 => b409().double_scalar_mul(u1, u2, q),
            NamedCurve::K283 => k283().double_scalar_mul(u1, u2, q),
            NamedCurve::K409 => k409().double_scalar_mul(u1, u2, q),
        }
    }

    /// Is the point on this curve?
    pub fn is_on_curve(&self, pt: &AffinePoint) -> bool {
        match self {
            NamedCurve::P256 => p256().is_on_curve(pt),
            NamedCurve::P384 => p384().is_on_curve(pt),
            NamedCurve::B283 => b283().is_on_curve(pt),
            NamedCurve::B409 => b409().is_on_curve(pt),
            NamedCurve::K283 => k283().is_on_curve(pt),
            NamedCurve::K409 => k409().is_on_curve(pt),
        }
    }
}

/// An EC key pair (private scalar + public point).
#[derive(Clone, Debug)]
pub struct EcKeyPair {
    /// The curve.
    pub curve: NamedCurve,
    /// Private scalar in `[1, n-1]`.
    pub private: Bn,
    /// Public point `private * G`.
    pub public: AffinePoint,
}

/// Generate an ephemeral/static EC key pair on `curve`.
pub fn generate_keypair<R: EntropySource>(curve: NamedCurve, rng: &mut R) -> EcKeyPair {
    let n = curve.order();
    let bound = n.sub(&Bn::one());
    let private = Bn::random_below(rng, &bound).add(&Bn::one()); // [1, n-1]
    let public = curve.scalar_mul_base(&private);
    EcKeyPair {
        curve,
        private,
        public,
    }
}

/// ECDH shared-secret computation: the x-coordinate of
/// `private * peer_public`, encoded to the field width.
pub fn ecdh(
    curve: NamedCurve,
    private: &Bn,
    peer_public: &AffinePoint,
) -> Result<Vec<u8>, CryptoError> {
    if !curve.is_on_curve(peer_public) {
        return Err(CryptoError::InvalidPoint);
    }
    let shared = curve.scalar_mul(peer_public, private);
    if shared.infinity {
        return Err(CryptoError::InvalidPoint);
    }
    Ok(shared.x.to_bytes_be_padded(curve.byte_len()))
}

/// Encode a point in X9.62 uncompressed form: `04 || X || Y`.
pub fn encode_point(curve: NamedCurve, pt: &AffinePoint) -> Vec<u8> {
    assert!(!pt.infinity, "cannot encode the point at infinity");
    let len = curve.byte_len();
    let mut out = Vec::with_capacity(1 + 2 * len);
    out.push(0x04);
    out.extend_from_slice(&pt.x.to_bytes_be_padded(len));
    out.extend_from_slice(&pt.y.to_bytes_be_padded(len));
    out
}

/// Decode an X9.62 uncompressed point, validating curve membership.
pub fn decode_point(curve: NamedCurve, data: &[u8]) -> Result<AffinePoint, CryptoError> {
    let len = curve.byte_len();
    if data.len() != 1 + 2 * len || data[0] != 0x04 {
        return Err(CryptoError::InvalidPoint);
    }
    let pt = AffinePoint::new(
        Bn::from_bytes_be(&data[1..1 + len]),
        Bn::from_bytes_be(&data[1 + len..]),
    );
    if !curve.is_on_curve(&pt) {
        return Err(CryptoError::InvalidPoint);
    }
    Ok(pt)
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcdsaSignature {
    /// First half.
    pub r: Bn,
    /// Second half.
    pub s: Bn,
}

impl EcdsaSignature {
    /// Fixed-width `r || s` encoding (2 * order width).
    pub fn to_bytes(&self, curve: NamedCurve) -> Vec<u8> {
        let len = curve.order().bit_len().div_ceil(8);
        let mut out = self.r.to_bytes_be_padded(len);
        out.extend_from_slice(&self.s.to_bytes_be_padded(len));
        out
    }

    /// Parse the fixed-width encoding.
    pub fn from_bytes(curve: NamedCurve, data: &[u8]) -> Result<Self, CryptoError> {
        let len = curve.order().bit_len().div_ceil(8);
        if data.len() != 2 * len {
            return Err(CryptoError::InvalidSignature);
        }
        Ok(EcdsaSignature {
            r: Bn::from_bytes_be(&data[..len]),
            s: Bn::from_bytes_be(&data[len..]),
        })
    }
}

/// Truncate a message digest to the bit length of the group order
/// (FIPS 186-4 §6.4).
fn digest_to_scalar(curve: NamedCurve, digest: &[u8]) -> Bn {
    let n_bits = curve.order().bit_len();
    let mut z = Bn::from_bytes_be(digest);
    let d_bits = digest.len() * 8;
    if d_bits > n_bits {
        z = z.shr(d_bits - n_bits);
    }
    z
}

/// ECDSA sign (SHA-256 digest of `msg`).
pub fn ecdsa_sign<R: EntropySource>(
    curve: NamedCurve,
    private: &Bn,
    msg: &[u8],
    rng: &mut R,
) -> EcdsaSignature {
    let n = curve.order();
    let z = digest_to_scalar(curve, &Sha256::digest(msg));
    loop {
        let k = Bn::random_below(rng, &n.sub(&Bn::one())).add(&Bn::one());
        let point = curve.scalar_mul_base(&k);
        let r = point.x.rem(n);
        if r.is_zero() {
            continue;
        }
        let k_inv = k.mod_inv(n).expect("k in [1, n-1], n prime");
        // s = k^-1 (z + r d) mod n
        let s = k_inv.mul_mod(&z.add(&r.mul_mod(private, n)).rem(n), n);
        if s.is_zero() {
            continue;
        }
        return EcdsaSignature { r, s };
    }
}

/// ECDSA verify (SHA-256 digest of `msg`).
pub fn ecdsa_verify(
    curve: NamedCurve,
    public: &AffinePoint,
    msg: &[u8],
    sig: &EcdsaSignature,
) -> Result<(), CryptoError> {
    let n = curve.order();
    let one = Bn::one();
    if sig.r < one || &sig.r >= n || sig.s < one || &sig.s >= n {
        return Err(CryptoError::InvalidSignature);
    }
    if !curve.is_on_curve(public) {
        return Err(CryptoError::InvalidPoint);
    }
    let z = digest_to_scalar(curve, &Sha256::digest(msg));
    let s_inv = sig.s.mod_inv(n).ok_or(CryptoError::InvalidSignature)?;
    let u1 = z.mul_mod(&s_inv, n);
    let u2 = sig.r.mul_mod(&s_inv, n);
    let point = curve.double_scalar_mul(&u1, &u2, public);
    if point.infinity {
        return Err(CryptoError::InvalidSignature);
    }
    if point.x.rem(n) == sig.r {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn keypair_public_on_curve() {
        let mut rng = TestRng::new(101);
        for curve in [NamedCurve::P256, NamedCurve::P384] {
            let kp = generate_keypair(curve, &mut rng);
            assert!(curve.is_on_curve(&kp.public), "{curve:?}");
            assert!(!kp.private.is_zero());
            assert!(&kp.private < curve.order());
        }
    }

    #[test]
    fn ecdh_agreement_prime_curves() {
        let mut rng = TestRng::new(102);
        for curve in [NamedCurve::P256, NamedCurve::P384] {
            let alice = generate_keypair(curve, &mut rng);
            let bob = generate_keypair(curve, &mut rng);
            let s1 = ecdh(curve, &alice.private, &bob.public).unwrap();
            let s2 = ecdh(curve, &bob.private, &alice.public).unwrap();
            assert_eq!(s1, s2, "{curve:?}");
            assert_eq!(s1.len(), curve.byte_len());
        }
    }

    #[test]
    fn ecdh_agreement_binary_curves() {
        let mut rng = TestRng::new(103);
        for curve in [NamedCurve::B283, NamedCurve::K283] {
            let alice = generate_keypair(curve, &mut rng);
            let bob = generate_keypair(curve, &mut rng);
            let s1 = ecdh(curve, &alice.private, &bob.public).unwrap();
            let s2 = ecdh(curve, &bob.private, &alice.public).unwrap();
            assert_eq!(s1, s2, "{curve:?}");
        }
    }

    #[test]
    fn ecdh_rejects_off_curve_point() {
        let mut rng = TestRng::new(104);
        let kp = generate_keypair(NamedCurve::P256, &mut rng);
        let bogus = AffinePoint::new(Bn::from_u64(2), Bn::from_u64(3));
        assert_eq!(
            ecdh(NamedCurve::P256, &kp.private, &bogus),
            Err(CryptoError::InvalidPoint)
        );
    }

    #[test]
    fn ecdsa_sign_verify_all_curves() {
        let mut rng = TestRng::new(105);
        for curve in NamedCurve::ALL {
            let kp = generate_keypair(curve, &mut rng);
            let msg = b"server key exchange: curve params + ecdhe pubkey";
            let sig = ecdsa_sign(curve, &kp.private, msg, &mut rng);
            ecdsa_verify(curve, &kp.public, msg, &sig)
                .unwrap_or_else(|e| panic!("{}: {e}", curve.name()));
            assert!(
                ecdsa_verify(curve, &kp.public, b"other message", &sig).is_err(),
                "{}",
                curve.name()
            );
        }
    }

    #[test]
    fn ecdsa_rejects_zero_signature() {
        let mut rng = TestRng::new(106);
        let kp = generate_keypair(NamedCurve::P256, &mut rng);
        let sig = EcdsaSignature {
            r: Bn::zero(),
            s: Bn::one(),
        };
        assert!(ecdsa_verify(NamedCurve::P256, &kp.public, b"m", &sig).is_err());
    }

    #[test]
    fn ecdsa_signature_encoding_roundtrip() {
        let mut rng = TestRng::new(107);
        let kp = generate_keypair(NamedCurve::P256, &mut rng);
        let sig = ecdsa_sign(NamedCurve::P256, &kp.private, b"msg", &mut rng);
        let bytes = sig.to_bytes(NamedCurve::P256);
        assert_eq!(bytes.len(), 64);
        let back = EcdsaSignature::from_bytes(NamedCurve::P256, &bytes).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn point_encoding_roundtrip() {
        let mut rng = TestRng::new(108);
        for curve in [NamedCurve::P256, NamedCurve::B283] {
            let kp = generate_keypair(curve, &mut rng);
            let enc = encode_point(curve, &kp.public);
            assert_eq!(enc.len(), 1 + 2 * curve.byte_len());
            let dec = decode_point(curve, &enc).unwrap();
            assert_eq!(dec, kp.public);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_point(NamedCurve::P256, &[]).is_err());
        assert!(decode_point(NamedCurve::P256, &[0x02; 65]).is_err());
        let mut valid_len_garbage = vec![0x04u8];
        valid_len_garbage.extend_from_slice(&[0x11; 64]);
        assert!(decode_point(NamedCurve::P256, &valid_len_garbage).is_err());
    }

    #[test]
    fn iana_roundtrip() {
        for c in NamedCurve::ALL {
            assert_eq!(NamedCurve::from_iana_id(c.iana_id()), Some(c));
        }
        assert_eq!(NamedCurve::from_iana_id(9999), None);
    }
}
