//! Elliptic curves over binary fields GF(2^m): NIST B-283, K-283, B-409,
//! K-409 — the four "counterpart curves" evaluated in the paper's
//! Figure 7c alongside P-256 and P-384.
//!
//! Non-supersingular curves `y^2 + xy = x^3 + a x^2 + b` with affine
//! arithmetic (one field inversion per group operation; binary-field EEA
//! inversion is cheap relative to the comb multiplication here).

use crate::bn::Bn;
use crate::ec::AffinePoint;
use crate::gf2m::{El, Gf2m};

/// A binary-field NIST curve.
pub struct BinaryCurve {
    /// The underlying field GF(2^m).
    pub field: Gf2m,
    /// Coefficient `a` (0 or 1 for NIST curves, kept general).
    a: El,
    /// Coefficient `b`.
    b: El,
    /// Base point.
    gx: El,
    gy: El,
    /// Order of the base point (prime).
    pub order: Bn,
    /// Field element size in bytes for encoding.
    pub byte_len: usize,
}

impl BinaryCurve {
    /// Construct from hex parameters.
    pub fn from_hex(
        m: usize,
        taps: &[usize],
        a: u64,
        b: &str,
        gx: &str,
        gy: &str,
        n: &str,
    ) -> Self {
        let field = Gf2m::new(m, taps);
        let mut a_el = field.zero();
        a_el[0] = a;
        BinaryCurve {
            a: a_el,
            b: field.from_hex(b),
            gx: field.from_hex(gx),
            gy: field.from_hex(gy),
            order: Bn::from_hex(n).unwrap(),
            byte_len: m.div_ceil(8),
            field,
        }
    }

    /// The base point G.
    pub fn generator(&self) -> AffinePoint {
        AffinePoint::new(self.field.to_bn(&self.gx), self.field.to_bn(&self.gy))
    }

    /// Is `pt` on the curve?
    pub fn is_on_curve(&self, pt: &AffinePoint) -> bool {
        if pt.infinity {
            return false;
        }
        if pt.x.bit_len() > self.field.m || pt.y.bit_len() > self.field.m {
            return false;
        }
        let f = &self.field;
        let x = f.from_bn(&pt.x);
        let y = f.from_bn(&pt.y);
        // y^2 + xy == x^3 + a x^2 + b
        let lhs = f.add(&f.sqr(&y), &f.mul(&x, &y));
        let x2 = f.sqr(&x);
        let rhs = f.add(&f.add(&f.mul(&x2, &x), &f.mul(&self.a, &x2)), &self.b);
        lhs == rhs
    }

    /// Group addition (affine). `-P = (x, x + y)`.
    pub fn add_points(&self, p: &AffinePoint, q: &AffinePoint) -> AffinePoint {
        if p.infinity {
            return q.clone();
        }
        if q.infinity {
            return p.clone();
        }
        let f = &self.field;
        let x1 = f.from_bn(&p.x);
        let y1 = f.from_bn(&p.y);
        let x2 = f.from_bn(&q.x);
        let y2 = f.from_bn(&q.y);
        if x1 == x2 {
            // Q == -P  <=>  y2 == x1 + y1.
            if y2 == f.add(&x1, &y1) {
                return AffinePoint::infinity();
            }
            // P == Q: doubling.
            return self.double_el(&x1, &y1);
        }
        // lambda = (y1 + y2) / (x1 + x2)
        let dx = f.add(&x1, &x2);
        let lambda = f.mul(&f.add(&y1, &y2), &f.inv(&dx));
        // x3 = lambda^2 + lambda + x1 + x2 + a
        let x3 = f.add(&f.add(&f.add(&f.sqr(&lambda), &lambda), &dx), &self.a);
        // y3 = lambda (x1 + x3) + x3 + y1
        let y3 = f.add(&f.add(&f.mul(&lambda, &f.add(&x1, &x3)), &x3), &y1);
        AffinePoint::new(f.to_bn(&x3), f.to_bn(&y3))
    }

    /// Point doubling on field elements.
    fn double_el(&self, x1: &El, y1: &El) -> AffinePoint {
        let f = &self.field;
        if f.is_zero(x1) {
            // 2(0, sqrt(b)) = infinity on these curves.
            return AffinePoint::infinity();
        }
        // lambda = x1 + y1/x1
        let lambda = f.add(x1, &f.mul(y1, &f.inv(x1)));
        // x3 = lambda^2 + lambda + a
        let x3 = f.add(&f.add(&f.sqr(&lambda), &lambda), &self.a);
        // y3 = x1^2 + (lambda + 1) x3
        let y3 = f.add(&f.sqr(x1), &f.mul(&f.add(&lambda, &f.one()), &x3));
        AffinePoint::new(f.to_bn(&x3), f.to_bn(&y3))
    }

    /// Scalar multiplication (MSB-first double-and-add).
    pub fn scalar_mul(&self, pt: &AffinePoint, k: &Bn) -> AffinePoint {
        if k.is_zero() || pt.infinity {
            return AffinePoint::infinity();
        }
        let mut acc = AffinePoint::infinity();
        for i in (0..k.bit_len()).rev() {
            acc = self.add_points(&acc, &acc.clone());
            if k.bit(i) {
                acc = self.add_points(&acc, pt);
            }
        }
        acc
    }

    /// `k * G`.
    pub fn scalar_mul_base(&self, k: &Bn) -> AffinePoint {
        self.scalar_mul(&self.generator(), k)
    }

    /// `u1*G + u2*Q` (ECDSA verification).
    pub fn double_scalar_mul(&self, u1: &Bn, u2: &Bn, q: &AffinePoint) -> AffinePoint {
        let a = self.scalar_mul_base(u1);
        let b = self.scalar_mul(q, u2);
        self.add_points(&a, &b)
    }
}

macro_rules! static_curve {
    ($name:ident, $m:expr, $taps:expr, $a:expr, $b:expr, $gx:expr, $gy:expr, $n:expr) => {
        /// NIST binary curve accessor (lazily initialized).
        pub fn $name() -> &'static BinaryCurve {
            use std::sync::OnceLock;
            static CURVE: OnceLock<BinaryCurve> = OnceLock::new();
            CURVE.get_or_init(|| BinaryCurve::from_hex($m, $taps, $a, $b, $gx, $gy, $n))
        }
    };
}

static_curve!(
    b283,
    283,
    &[12, 7, 5, 0],
    1,
    "27b680ac8b8596da5a4af8a19a0303fca97fd7645309fa2a581485af6263e313b79a2f5",
    "5f939258db7dd90e1934f8c70b0dfec2eed25b8557eac9c80e2e198f8cdbecd86b12053",
    "3676854fe24141cb98fe6d4b20d02b4516ff702350eddb0826779c813f0df45be8112f4",
    "3ffffffffffffffffffffffffffffffffffef90399660fc938a90165b042a7cefadb307"
);

static_curve!(
    k283,
    283,
    &[12, 7, 5, 0],
    0,
    "1",
    "503213f78ca44883f1a3b8162f188e553cd265f23c1567a16876913b0c2ac2458492836",
    "1ccda380f1c9e318d90f95d07e5426fe87e45c0e8184698e45962364e34116177dd2259",
    "1ffffffffffffffffffffffffffffffffffe9ae2ed07577265dff7f94451e061e163c61"
);

static_curve!(
    b409,
    409,
    &[87, 0],
    1,
    "21a5c2c8ee9feb5c4b9a753b7b476b7fd6422ef1f3dd674761fa99d6ac27c8a9a197b272822f6cd57a55aa4f50ae317b13545f",
    "15d4860d088ddb3496b0c6064756260441cde4af1771d4db01ffe5b34e59703dc255a868a1180515603aeab60794e54bb7996a7",
    "61b1cfab6be5f32bbfa78324ed106a7636b9c5a7bd198d0158aa4f5488d08f38514f1fdf4b4f40d2181b3681c364ba0273c706",
    "10000000000000000000000000000000000000000000000000001e2aad6a612f33307be5fa47c3c9e052f838164cd37d9a21173"
);

static_curve!(
    k409,
    409,
    &[87, 0],
    0,
    "1",
    "60f05f658f49c1ad3ab1890f7184210efd0987e307c84c27accfb8f9f67cc2c460189eb5aaaa62ee222eb1b35540cfe9023746",
    "1e369050b7c4e42acba1dacbf04299c3460782f918ea427e6325165e9ea10e3da5f6c42e9c55215aa9ca27a5863ec48d8e0286b",
    "7ffffffffffffffffffffffffffffffffffffffffffffffffffe5f83b2d4ea20400ec4557d5ed3e3e7ca5b4b5c83b8e01e5fcf"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_on_curve() {
        for (name, c) in [
            ("b283", b283()),
            ("k283", k283()),
            ("b409", b409()),
            ("k409", k409()),
        ] {
            assert!(c.is_on_curve(&c.generator()), "{name} generator off-curve");
        }
    }

    #[test]
    fn b283_group_order() {
        let c = b283();
        assert!(c.scalar_mul_base(&c.order).infinity, "n*G must be infinity");
    }

    #[test]
    fn k283_group_order() {
        let c = k283();
        assert!(c.scalar_mul_base(&c.order).infinity);
    }

    #[test]
    fn b409_group_order() {
        let c = b409();
        assert!(c.scalar_mul_base(&c.order).infinity);
    }

    #[test]
    fn k409_group_order() {
        let c = k409();
        assert!(c.scalar_mul_base(&c.order).infinity);
    }

    #[test]
    fn add_identities() {
        let c = b283();
        let g = c.generator();
        assert_eq!(c.add_points(&g, &AffinePoint::infinity()), g);
        assert_eq!(c.add_points(&AffinePoint::infinity(), &g), g);
        // P + (-P) = infinity; -P = (x, x+y) in char 2.
        let f = &c.field;
        let neg = AffinePoint::new(
            g.x.clone(),
            f.to_bn(&f.add(&f.from_bn(&g.x), &f.from_bn(&g.y))),
        );
        assert!(c.is_on_curve(&neg));
        assert!(c.add_points(&g, &neg).infinity);
    }

    #[test]
    fn scalar_mul_distributes() {
        let c = k283();
        let k1 = Bn::from_u64(123456789);
        let k2 = Bn::from_u64(987654321);
        let lhs = c.scalar_mul_base(&k1.add(&k2));
        let rhs = c.add_points(&c.scalar_mul_base(&k1), &c.scalar_mul_base(&k2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn small_multiples_consistent() {
        let c = b283();
        let g = c.generator();
        let g2 = c.add_points(&g, &g);
        let g3 = c.add_points(&g2, &g);
        assert_eq!(c.scalar_mul_base(&Bn::from_u64(2)), g2);
        assert_eq!(c.scalar_mul_base(&Bn::from_u64(3)), g3);
        assert!(c.is_on_curve(&g2));
        assert!(c.is_on_curve(&g3));
    }

    #[test]
    fn multiples_stay_on_curve() {
        for c in [b409(), k409()] {
            let p = c.scalar_mul_base(&Bn::from_u64(0xdeadbeef));
            assert!(c.is_on_curve(&p));
        }
    }
}
