//! HMAC (RFC 2104), generic over the hash function.

use crate::hash::Hash;

/// Streaming HMAC state.
#[derive(Clone)]
pub struct Hmac<H: Hash> {
    inner: H,
    /// Key XOR opad, kept to build the outer hash at finalize time.
    opad_key: Vec<u8>,
}

impl<H: Hash> Hmac<H> {
    /// Start an HMAC computation with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut k = if key.len() > H::BLOCK_SIZE {
            H::hash(key)
        } else {
            key.to_vec()
        };
        k.resize(H::BLOCK_SIZE, 0);
        let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = H::new();
        inner.update(&ipad);
        Hmac {
            inner,
            opad_key: opad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish, producing the tag.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = H::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], msg: &[u8]) -> Vec<u8> {
        let mut h = Hmac::<H>::new(key);
        h.update(msg);
        h.finalize()
    }

    /// Constant-time tag comparison.
    pub fn verify(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
        let computed = Self::mac(key, msg);
        constant_time_eq(&computed, tag)
    }
}

/// Constant-time byte-slice equality (length leak is acceptable: lengths
/// are public protocol constants).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = Hmac::<Sha256>::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_key_data() {
        let key = [0xaau8; 131];
        let tag = Hmac::<Sha256>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test cases for HMAC-SHA-1.
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        let tag = Hmac::<Sha1>::mac(&key, b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_case2() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"key material";
        let msg: Vec<u8> = (0..200u8).collect();
        let mut h = Hmac::<Sha256>::new(key);
        h.update(&msg[..77]);
        h.update(&msg[77..]);
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(key, &msg));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::<Sha256>::mac(b"k", b"m");
        assert!(Hmac::<Sha256>::verify(b"k", b"m", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k", b"m2", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k2", b"m", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
