//! Key derivation: the TLS 1.2 PRF (RFC 5246 §5) and HKDF (RFC 5869),
//! including the TLS 1.3 `HKDF-Expand-Label` construction (RFC 8446 §7.1).
//!
//! In the paper's taxonomy these are the `PRF` and `HKDF` operations of
//! Table 1. The QAT Engine can offload PRF but — at the time of the paper
//! — not HKDF, which is why TLS 1.3 sees a smaller speedup (Fig. 8).

use crate::hash::Hash;
use crate::hmac::Hmac;
use crate::sha256::Sha256;

/// TLS 1.2 `P_hash`: HMAC-based expansion of `secret` over
/// `seed`, producing `out_len` bytes.
pub fn p_hash<H: Hash>(secret: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    // A(1) = HMAC(secret, seed); A(i) = HMAC(secret, A(i-1))
    let mut a = Hmac::<H>::mac(secret, seed);
    while out.len() < out_len {
        let mut h = Hmac::<H>::new(secret);
        h.update(&a);
        h.update(seed);
        out.extend_from_slice(&h.finalize());
        a = Hmac::<H>::mac(secret, &a);
    }
    out.truncate(out_len);
    out
}

/// TLS 1.2 PRF with SHA-256: `PRF(secret, label, seed)`.
pub fn prf_tls12(secret: &[u8], label: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);
    p_hash::<Sha256>(secret, &label_seed, out_len)
}

/// HKDF-Extract (RFC 5869 §2.2): `PRK = HMAC-Hash(salt, IKM)`.
pub fn hkdf_extract<H: Hash>(salt: &[u8], ikm: &[u8]) -> Vec<u8> {
    let salt_or_zeros;
    let salt = if salt.is_empty() {
        salt_or_zeros = vec![0u8; H::OUTPUT_SIZE];
        &salt_or_zeros
    } else {
        salt
    };
    Hmac::<H>::mac(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3).
pub fn hkdf_expand<H: Hash>(prk: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * H::OUTPUT_SIZE, "HKDF output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut h = Hmac::<H>::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize();
        out.extend_from_slice(&t);
        counter += 1;
    }
    out.truncate(out_len);
    out
}

/// TLS 1.3 `HKDF-Expand-Label(secret, label, context, length)`.
///
/// The label is prefixed with `"tls13 "` per RFC 8446 §7.1.
pub fn hkdf_expand_label(secret: &[u8], label: &[u8], context: &[u8], out_len: usize) -> Vec<u8> {
    let mut info = Vec::with_capacity(4 + 6 + label.len() + context.len());
    info.extend_from_slice(&(out_len as u16).to_be_bytes());
    info.push((6 + label.len()) as u8);
    info.extend_from_slice(b"tls13 ");
    info.extend_from_slice(label);
    info.push(context.len() as u8);
    info.extend_from_slice(context);
    hkdf_expand::<Sha256>(secret, &info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // Published TLS 1.2 PRF (SHA-256) test vector
    // (IETF TLS mailing list / widely reproduced).
    #[test]
    fn tls12_prf_vector() {
        let secret = unhex("9bbe436ba940f017b17652849a71db35");
        let seed = unhex("a0ba9f936cda311827a6f796ffd5198c");
        let out = prf_tls12(&secret, b"test label", &seed, 100);
        assert_eq!(
            hex(&out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a\
             6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab\
             4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701\
             87347b66"
        );
    }

    #[test]
    fn p_hash_length_handling() {
        // Output shorter / equal / longer than one HMAC block.
        for len in [1usize, 20, 32, 33, 64, 100] {
            let out = p_hash::<Sha256>(b"secret", b"seed", len);
            assert_eq!(out.len(), len);
        }
        // Prefix property: longer output starts with shorter output.
        let short = p_hash::<Sha256>(b"s", b"x", 10);
        let long = p_hash::<Sha256>(b"s", b"x", 50);
        assert_eq!(&long[..10], &short[..]);
    }

    #[test]
    fn p_hash_sha1_differs_from_sha256() {
        let a = p_hash::<Sha1>(b"k", b"s", 16);
        let b = p_hash::<Sha256>(b"k", b"s", 16);
        assert_ne!(a, b);
    }

    // RFC 5869 Appendix A test cases.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract::<Sha256>(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand::<Sha256>(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_rfc5869_case3_empty_salt_info() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let prk = hkdf_extract::<Sha256>(&[], &ikm);
        assert_eq!(
            hex(&prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        );
        let okm = hkdf_expand::<Sha256>(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_label_structure() {
        // Check it is deterministic and label-sensitive.
        let s = [7u8; 32];
        let a = hkdf_expand_label(&s, b"key", &[], 16);
        let b = hkdf_expand_label(&s, b"key", &[], 16);
        let c = hkdf_expand_label(&s, b"iv", &[], 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    // RFC 8448 §3 (TLS 1.3 simple 1-RTT handshake trace): derived secret.
    #[test]
    fn tls13_early_secret_derivation() {
        // early_secret = HKDF-Extract(0, 0) with SHA-256
        let zeros = [0u8; 32];
        let early = hkdf_extract::<Sha256>(&[], &zeros);
        assert_eq!(
            hex(&early),
            "33ad0a1c607ec03b09e6cd9893680ce210adf300aa1f2660e1b22e10f170f92a"
        );
        // derived = HKDF-Expand-Label(early_secret, "derived", SHA256(""), 32)
        let empty_hash = crate::sha256::Sha256::digest(b"");
        let derived = hkdf_expand_label(&early, b"derived", &empty_hash, 32);
        assert_eq!(
            hex(&derived),
            "6f2615a108c702c5678f54fc9dbab69716c076189c48250cebeac3576c3611ba"
        );
    }
}
