//! Montgomery-form modular arithmetic for odd moduli.
//!
//! This is the hot path for RSA: `MontCtx::mod_exp` implements
//! left-to-right fixed-window exponentiation over CIOS Montgomery
//! multiplication. The window table is rebuilt per call; callers that sign
//! repeatedly with the same key hold a [`MontCtx`] per modulus (see
//! `rsa::RsaPrivateKey`).

use crate::bn::Bn;

/// Precomputed Montgomery context for a fixed odd modulus.
#[derive(Clone, Debug)]
pub struct MontCtx {
    /// The modulus `n` (odd, > 1).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64 * limbs)`.
    rr: Vec<u64>,
    /// The modulus as a `Bn` (for slow-path reductions).
    n_bn: Bn,
}

/// `-n^{-1} mod 2^64` for odd `n0` (Newton iteration on 2-adic inverse).
fn neg_inv_u64(n0: u64) -> u64 {
    debug_assert!(n0 & 1 == 1);
    let mut inv = n0; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
    }
    debug_assert_eq!(n0.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

impl MontCtx {
    /// Build a context for odd modulus `n > 1`.
    pub fn new(n_bn: Bn) -> Self {
        assert!(n_bn.is_odd() && !n_bn.is_one(), "modulus must be odd > 1");
        let n = n_bn.limbs().to_vec();
        let k = n.len();
        let n0_inv = neg_inv_u64(n[0]);
        // rr = R^2 mod n = 2^(128k) mod n.
        let rr_bn = Bn::one().shl(128 * k).rem(&n_bn);
        let mut rr = rr_bn.limbs().to_vec();
        rr.resize(k, 0);
        MontCtx {
            n,
            n0_inv,
            rr,
            n_bn,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Bn {
        &self.n_bn
    }

    /// Number of 64-bit limbs in the modulus.
    pub fn limbs(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    ///
    /// `a`, `b` and the result are `k`-limb little-endian vectors `< n`.
    fn mont_mul(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k);
        // t has k+2 limbs.
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + (ai as u128) * (b[j] as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;
            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + (m as u128) * (self.n[0] as u128);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + (s >> 64) as u64;
            t[k + 1] = 0;
        }
        // Conditional final subtraction.
        let needs_sub = t[k] != 0 || ge(&t[..k], &self.n);
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(self.n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// Convert into Montgomery form: `a * R mod n`.
    fn to_mont(&self, a: &Bn) -> Vec<u64> {
        let k = self.n.len();
        let mut a_limbs = a.rem(&self.n_bn).limbs().to_vec();
        a_limbs.resize(k, 0);
        let mut out = vec![0u64; k];
        self.mont_mul(&a_limbs, &self.rr, &mut out);
        out
    }

    /// Convert out of Montgomery form: `a * R^{-1} mod n`.
    #[allow(clippy::wrong_self_convention)] // "from Montgomery form", not a constructor
    fn from_mont(&self, a: &[u64]) -> Bn {
        let k = self.n.len();
        let one: Vec<u64> = {
            let mut v = vec![0u64; k];
            v[0] = 1;
            v
        };
        let mut out = vec![0u64; k];
        self.mont_mul(a, &one, &mut out);
        Bn::from_limbs(out)
    }

    /// Modular exponentiation `base^exp mod n` using a fixed 5-bit window.
    pub fn mod_exp(&self, base: &Bn, exp: &Bn) -> Bn {
        if exp.is_zero() {
            return Bn::one().rem(&self.n_bn);
        }
        let k = self.n.len();
        const WINDOW: usize = 5;
        let base_m = self.to_mont(base);
        // Precompute base^0..base^(2^w - 1) in Montgomery form.
        let one_m = self.to_mont(&Bn::one());
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(one_m.clone());
        table.push(base_m.clone());
        for i in 2..(1 << WINDOW) {
            let mut t = vec![0u64; k];
            self.mont_mul(&table[i - 1], &base_m, &mut t);
            table.push(t);
        }
        let bits = exp.bit_len();
        let mut acc = one_m;
        let mut tmp = vec![0u64; k];
        let mut i = bits;
        while i > 0 {
            let take = WINDOW.min(i);
            // Square `take` times.
            for _ in 0..take {
                self.mont_mul(&acc.clone(), &acc.clone(), &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            // Extract window bits [i-take, i).
            let mut w = 0usize;
            for j in (i - take..i).rev() {
                w = (w << 1) | exp.bit(j) as usize;
            }
            if w != 0 {
                self.mont_mul(&acc.clone(), &table[w], &mut tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            i -= take;
        }
        self.from_mont(&acc)
    }

    /// `a * b mod n` through Montgomery form (slower than raw `mont_mul`
    /// but convenient for occasional products).
    pub fn mul_mod(&self, a: &Bn, b: &Bn) -> Bn {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        let mut out = vec![0u64; self.n.len()];
        self.mont_mul(&am, &bm, &mut out);
        self.from_mont(&out)
    }
}

/// `a >= b` for equal-length little-endian limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn neg_inv_property() {
        for n0 in [1u64, 3, 5, 0xffff_ffff_ffff_ffff, 0x1234_5678_9abc_def1] {
            let inv = neg_inv_u64(n0);
            // n0 * (-inv) == 1 mod 2^64  <=>  n0 * inv == -1 mod 2^64
            assert_eq!(n0.wrapping_mul(inv.wrapping_neg()), 1);
        }
    }

    #[test]
    fn mul_mod_matches_naive() {
        let m = bn("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        let a = bn("deadbeefcafebabe0123456789abcdef00ff00ff00ff00ff");
        let b = bn("1122334455667788991122334455667788aabbccddeeff");
        let ctx = MontCtx::new(m.clone());
        assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    fn mod_exp_matches_naive() {
        let m = bn("f123456789abcdef123456789abcdef1");
        let a = bn("abcdef");
        let e = bn("10001");
        let ctx = MontCtx::new(m.clone());
        // naive square-and-multiply
        let mut expect = Bn::one();
        let mut base = a.rem(&m);
        for i in 0..e.bit_len() {
            if e.bit(i) {
                expect = expect.mul_mod(&base, &m);
            }
            base = base.mul_mod(&base, &m);
        }
        assert_eq!(ctx.mod_exp(&a, &e), expect);
    }

    #[test]
    fn mod_exp_zero_exponent() {
        let m = bn("d");
        let ctx = MontCtx::new(m);
        assert!(ctx.mod_exp(&bn("5"), &Bn::zero()).is_one());
    }

    #[test]
    fn mod_exp_fermat_256bit() {
        let p = bn("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        let ctx = MontCtx::new(p.clone());
        let a = bn("2");
        assert!(ctx.mod_exp(&a, &p.sub(&Bn::one())).is_one());
    }
}
