//! AES-128 block cipher and CBC mode (FIPS 197 / SP 800-38A).
//!
//! The paper's secure-data-transfer evaluation uses the AES128-SHA cipher
//! suite (AES-128-CBC + HMAC-SHA1). This is a straightforward S-box
//! implementation: the SW baseline in the simulator models AES-NI speed
//! via the cost model, so this code only needs to be *correct*, and fast
//! enough for functional tests.

use crate::error::CryptoError;

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (derived at first use).
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiply in GF(2^8) with the AES polynomial 0x11b.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= rcon;
                rcon = gmul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            xor16(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        xor16(block, &self.round_keys[10]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..10).rev() {
            xor16(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        xor16(block, &self.round_keys[0]);
    }
}

fn xor16(a: &mut [u8; 16], b: &[u8; 16]) {
    for i in 0..16 {
        a[i] ^= b[i];
    }
}

fn sub_bytes(b: &mut [u8; 16]) {
    for x in b.iter_mut() {
        *x = SBOX[*x as usize];
    }
}

fn inv_sub_bytes(b: &mut [u8; 16]) {
    let inv = inv_sbox();
    for x in b.iter_mut() {
        *x = inv[*x as usize];
    }
}

/// State layout: column-major, i.e. byte index = col*4 + row.
fn shift_rows(b: &mut [u8; 16]) {
    let orig = *b;
    for row in 1..4 {
        for col in 0..4 {
            b[col * 4 + row] = orig[((col + row) % 4) * 4 + row];
        }
    }
}

fn inv_shift_rows(b: &mut [u8; 16]) {
    let orig = *b;
    for row in 1..4 {
        for col in 0..4 {
            b[((col + row) % 4) * 4 + row] = orig[col * 4 + row];
        }
    }
}

fn mix_columns(b: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [b[col * 4], b[col * 4 + 1], b[col * 4 + 2], b[col * 4 + 3]];
        b[col * 4] = gmul(c[0], 2) ^ gmul(c[1], 3) ^ c[2] ^ c[3];
        b[col * 4 + 1] = c[0] ^ gmul(c[1], 2) ^ gmul(c[2], 3) ^ c[3];
        b[col * 4 + 2] = c[0] ^ c[1] ^ gmul(c[2], 2) ^ gmul(c[3], 3);
        b[col * 4 + 3] = gmul(c[0], 3) ^ c[1] ^ c[2] ^ gmul(c[3], 2);
    }
}

fn inv_mix_columns(b: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [b[col * 4], b[col * 4 + 1], b[col * 4 + 2], b[col * 4 + 3]];
        b[col * 4] = gmul(c[0], 14) ^ gmul(c[1], 11) ^ gmul(c[2], 13) ^ gmul(c[3], 9);
        b[col * 4 + 1] = gmul(c[0], 9) ^ gmul(c[1], 14) ^ gmul(c[2], 11) ^ gmul(c[3], 13);
        b[col * 4 + 2] = gmul(c[0], 13) ^ gmul(c[1], 9) ^ gmul(c[2], 14) ^ gmul(c[3], 11);
        b[col * 4 + 3] = gmul(c[0], 11) ^ gmul(c[1], 13) ^ gmul(c[2], 9) ^ gmul(c[3], 14);
    }
}

/// AES-128-CBC encryption. `plaintext.len()` must be a multiple of 16
/// (TLS 1.2 CBC records are padded by the record layer before encryption).
pub fn cbc_encrypt(key: &Aes128, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !plaintext.len().is_multiple_of(16) {
        return Err(CryptoError::InvalidLength);
    }
    let mut out = Vec::with_capacity(plaintext.len());
    let mut prev = *iv;
    for chunk in plaintext.chunks_exact(16) {
        let mut block: [u8; 16] = chunk.try_into().unwrap();
        xor16(&mut block, &prev);
        key.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    Ok(out)
}

/// AES-128-CBC encryption in place: `buf` is overwritten with the
/// ciphertext, no output allocation. `buf.len()` must be a multiple of
/// 16 (the record layer pads before encrypting).
pub fn cbc_encrypt_in_place(
    key: &Aes128,
    iv: &[u8; 16],
    buf: &mut [u8],
) -> Result<(), CryptoError> {
    if !buf.len().is_multiple_of(16) {
        return Err(CryptoError::InvalidLength);
    }
    let mut prev = *iv;
    for chunk in buf.chunks_exact_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        xor16(block, &prev);
        key.encrypt_block(block);
        prev = *block;
    }
    Ok(())
}

/// AES-128-CBC decryption in place: `buf` is overwritten with the
/// (still padded) plaintext, no output allocation.
pub fn cbc_decrypt_in_place(
    key: &Aes128,
    iv: &[u8; 16],
    buf: &mut [u8],
) -> Result<(), CryptoError> {
    if !buf.len().is_multiple_of(16) || buf.is_empty() {
        return Err(CryptoError::InvalidLength);
    }
    let mut prev = *iv;
    for chunk in buf.chunks_exact_mut(16) {
        let block: &mut [u8; 16] = chunk.try_into().unwrap();
        let cblock = *block;
        key.decrypt_block(block);
        xor16(block, &prev);
        prev = cblock;
    }
    Ok(())
}

/// AES-128-CBC decryption.
pub fn cbc_decrypt(key: &Aes128, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !ciphertext.len().is_multiple_of(16) || ciphertext.is_empty() {
        return Err(CryptoError::InvalidLength);
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(16) {
        let cblock: [u8; 16] = chunk.try_into().unwrap();
        let mut block = cblock;
        key.decrypt_block(&mut block);
        xor16(&mut block, &prev);
        out.extend_from_slice(&block);
        prev = cblock;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_vector() {
        // FIPS 197 Appendix B.
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "3925841d02dc09fbdc118597196a0b32");
        aes.decrypt_block(&mut block);
        assert_eq!(hex(&block), "3243f6a8885a308d313198a2e0370734");
    }

    #[test]
    fn sp80038a_ecb_kat() {
        // SP 800-38A F.1.1 (first block).
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = unhex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    #[test]
    fn sp80038a_cbc_kat() {
        // SP 800-38A F.2.1 CBC-AES128.Encrypt (all four blocks).
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &pt).unwrap();
        assert_eq!(
            hex(&ct),
            "7649abac8119b246cee98e9b12e9197d\
             5086cb9b507219ee95db113a917678b2\
             73bed6b8e3c1743b7116e69e22229516\
             3ff1caa1681fac09120eca307586e1a7"
        );
        assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn cbc_rejects_partial_blocks() {
        let aes = Aes128::new(&[0u8; 16]);
        assert!(cbc_encrypt(&aes, &[0u8; 16], &[0u8; 15]).is_err());
        assert!(cbc_decrypt(&aes, &[0u8; 16], &[0u8; 17]).is_err());
        assert!(cbc_decrypt(&aes, &[0u8; 16], &[]).is_err());
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = [7u8; 16];
        for blocks in [1usize, 2, 5, 64] {
            let pt: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt).unwrap();
            assert_ne!(ct, pt);
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
        }
    }

    #[test]
    fn cbc_in_place_matches_allocating_mode() {
        let aes = Aes128::new(b"0123456789abcdef");
        let iv = [7u8; 16];
        for blocks in [1usize, 2, 5, 64] {
            let pt: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
            let mut buf = pt.clone();
            cbc_encrypt_in_place(&aes, &iv, &mut buf).unwrap();
            assert_eq!(buf, cbc_encrypt(&aes, &iv, &pt).unwrap());
            cbc_decrypt_in_place(&aes, &iv, &mut buf).unwrap();
            assert_eq!(buf, pt);
        }
        let mut short = vec![0u8; 15];
        assert!(cbc_encrypt_in_place(&aes, &iv, &mut short).is_err());
        assert!(cbc_decrypt_in_place(&aes, &iv, &mut short).is_err());
        assert!(cbc_decrypt_in_place(&aes, &iv, &mut []).is_err());
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }
}
