//! Fixed-width Montgomery arithmetic over prime fields, used by the
//! prime-curve module (`ec`) for P-256 (N = 4 limbs) and P-384 (N = 6).
//!
//! Elements are `[u64; N]` in Montgomery form — no heap allocation in the
//! point-arithmetic hot path, following the perf-book guidance to keep
//! oft-instantiated types small and allocation-free.

#![allow(clippy::needless_range_loop)] // fixed-width limb kernels index in lockstep

use crate::bn::Bn;

/// Parameters of a prime field with an `N`-limb odd modulus.
#[derive(Clone, Debug)]
pub struct FpParams<const N: usize> {
    /// The prime modulus `p` (little-endian limbs).
    pub p: [u64; N],
    /// `-p^{-1} mod 2^64`.
    pub n0_inv: u64,
    /// `R^2 mod p` where `R = 2^(64N)` — converts into Montgomery form.
    pub rr: [u64; N],
    /// `R mod p` — the Montgomery representation of 1.
    pub one: [u64; N],
}

impl<const N: usize> FpParams<N> {
    /// Derive the parameters from a prime modulus.
    pub fn new(p_bn: &Bn) -> Self {
        assert!(p_bn.is_odd(), "prime field modulus must be odd");
        assert!(p_bn.bit_len() <= 64 * N && p_bn.bit_len() > 64 * (N - 1));
        let mut p = [0u64; N];
        p[..p_bn.limbs().len()].copy_from_slice(p_bn.limbs());
        // -p^{-1} mod 2^64 by Newton iteration.
        let mut inv = p[0];
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p[0].wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        let rr_bn = Bn::one().shl(128 * N).rem(p_bn);
        let mut rr = [0u64; N];
        rr[..rr_bn.limbs().len()].copy_from_slice(rr_bn.limbs());
        let one_bn = Bn::one().shl(64 * N).rem(p_bn);
        let mut one = [0u64; N];
        one[..one_bn.limbs().len()].copy_from_slice(one_bn.limbs());
        FpParams { p, n0_inv, rr, one }
    }

    /// Convert a `Bn` (reduced mod p by the caller) into Montgomery form.
    pub fn to_mont(&self, v: &Bn) -> [u64; N] {
        let mut a = [0u64; N];
        let v = v.rem(&self.modulus_bn());
        a[..v.limbs().len()].copy_from_slice(v.limbs());
        self.mul(&a, &self.rr)
    }

    /// Convert out of Montgomery form into a `Bn`.
    pub fn from_mont(&self, a: &[u64; N]) -> Bn {
        let mut one = [0u64; N];
        one[0] = 1;
        let v = self.mul(a, &one);
        Bn::from_limbs(v.to_vec())
    }

    /// The modulus as a `Bn`.
    pub fn modulus_bn(&self) -> Bn {
        Bn::from_limbs(self.p.to_vec())
    }

    /// The additive identity (also the Montgomery form of 0).
    pub fn zero(&self) -> [u64; N] {
        [0u64; N]
    }

    /// Field addition.
    pub fn add(&self, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in 0..N {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            // The true value is out + 2^(64N); the borrow from the
            // subtraction cancels against the dropped carry.
            let _ = sub_limbs_borrow(&mut out, &self.p);
        } else if ge(&out, &self.p) {
            sub_limbs(&mut out, &self.p);
        }
        out
    }

    /// Field subtraction.
    pub fn sub(&self, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
        let mut out = *a;
        let borrow = sub_limbs_borrow(&mut out, b);
        if borrow {
            // out += p
            let mut carry = 0u64;
            for i in 0..N {
                let (s1, c1) = out[i].overflowing_add(self.p[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                out[i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
        }
        out
    }

    /// Field negation.
    pub fn neg(&self, a: &[u64; N]) -> [u64; N] {
        if a.iter().all(|&l| l == 0) {
            return [0u64; N];
        }
        let mut out = self.p;
        sub_limbs(&mut out, a);
        out
    }

    /// Montgomery multiplication (CIOS): `a * b * R^{-1} mod p`.
    pub fn mul(&self, a: &[u64; N], b: &[u64; N]) -> [u64; N] {
        // t: N+2 limbs, on the stack.
        let mut t = [0u64; 16]; // N <= 14 supported; we use N=4 or 6.
        debug_assert!(N + 2 <= 16);
        for &ai in a.iter() {
            let mut carry = 0u128;
            for j in 0..N {
                let s = t[j] as u128 + (ai as u128) * (b[j] as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[N] as u128 + carry;
            t[N] = s as u64;
            t[N + 1] = (s >> 64) as u64;
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + (m as u128) * (self.p[0] as u128);
            let mut carry = s >> 64;
            for j in 1..N {
                let s = t[j] as u128 + (m as u128) * (self.p[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[N] as u128 + carry;
            t[N - 1] = s as u64;
            t[N] = t[N + 1] + (s >> 64) as u64;
            t[N + 1] = 0;
        }
        let mut out = [0u64; N];
        out.copy_from_slice(&t[..N]);
        if t[N] != 0 {
            // True value is out + t[N] * 2^(64N) < 2p, so one subtraction
            // (with the borrow cancelling the high limb) normalizes it.
            let _ = sub_limbs_borrow(&mut out, &self.p);
        } else if ge(&out, &self.p) {
            sub_limbs(&mut out, &self.p);
        }
        out
    }

    /// Field squaring (delegates to `mul`).
    pub fn sqr(&self, a: &[u64; N]) -> [u64; N] {
        self.mul(a, a)
    }

    /// Field inversion via Fermat: `a^(p-2) mod p`.
    pub fn inv(&self, a: &[u64; N]) -> [u64; N] {
        let exp = self.modulus_bn().sub(&Bn::from_u64(2));
        self.pow(a, &exp)
    }

    /// Exponentiation by a `Bn` exponent (square-and-multiply, MSB-first).
    pub fn pow(&self, a: &[u64; N], exp: &Bn) -> [u64; N] {
        let mut acc = self.one;
        for i in (0..exp.bit_len()).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, a);
            }
        }
        acc
    }

    /// Is this the Montgomery form of zero?
    pub fn is_zero(&self, a: &[u64; N]) -> bool {
        a.iter().all(|&l| l == 0)
    }

    /// Equality (Montgomery forms are canonical `< p`).
    pub fn eq(&self, a: &[u64; N], b: &[u64; N]) -> bool {
        a == b
    }
}

/// `a >= b` on little-endian fixed-size limbs.
fn ge<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    for i in (0..N).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b`, asserting no borrow out.
fn sub_limbs<const N: usize>(a: &mut [u64; N], b: &[u64; N]) {
    let borrow = sub_limbs_borrow(a, b);
    debug_assert!(!borrow);
}

/// `a -= b`, returning whether a borrow out occurred.
fn sub_limbs_borrow<const N: usize>(a: &mut [u64; N], b: &[u64; N]) -> bool {
    let mut borrow = 0u64;
    for i in 0..N {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p256() -> FpParams<4> {
        FpParams::new(
            &Bn::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
                .unwrap(),
        )
    }

    #[test]
    fn roundtrip_mont() {
        let f = p256();
        for hx in [
            "0",
            "1",
            "2",
            "deadbeef",
            "ffffffff00000001000000000000000000000000fffffffffffffffffffffffe",
        ] {
            let v = Bn::from_hex(hx).unwrap();
            let m = f.to_mont(&v);
            assert_eq!(f.from_mont(&m), v, "hx={hx}");
        }
    }

    #[test]
    fn add_sub_neg() {
        let f = p256();
        let a = f.to_mont(&Bn::from_hex("123456789abcdef").unwrap());
        let b = f.to_mont(&Bn::from_hex("fedcba987654321").unwrap());
        let s = f.add(&a, &b);
        assert_eq!(f.sub(&s, &b), a);
        let na = f.neg(&a);
        assert!(f.is_zero(&f.add(&a, &na)));
        assert!(f.is_zero(&f.neg(&f.zero())));
    }

    #[test]
    fn mul_matches_bn() {
        let f = p256();
        let p = f.modulus_bn();
        let a_bn = Bn::from_hex("aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b98").unwrap();
        let b_bn = Bn::from_hex("3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147c").unwrap();
        let a = f.to_mont(&a_bn);
        let b = f.to_mont(&b_bn);
        let c = f.mul(&a, &b);
        assert_eq!(f.from_mont(&c), a_bn.mul_mod(&b_bn, &p));
    }

    #[test]
    fn inversion() {
        let f = p256();
        let a = f.to_mont(&Bn::from_hex("123456789").unwrap());
        let ai = f.inv(&a);
        assert_eq!(f.mul(&a, &ai), f.one);
    }

    #[test]
    fn pow_small() {
        let f = p256();
        let a = f.to_mont(&Bn::from_u64(3));
        // 3^4 = 81
        let r = f.pow(&a, &Bn::from_u64(4));
        assert_eq!(f.from_mont(&r), Bn::from_u64(81));
    }

    #[test]
    fn wraparound_add() {
        let f = p256();
        let p = f.modulus_bn();
        let pm1 = f.to_mont(&p.sub(&Bn::one()));
        let one = f.to_mont(&Bn::one());
        // (p-1) + 1 = 0 mod p
        assert!(f.is_zero(&f.add(&pm1, &one)));
        // (p-1) + (p-1) = p-2 mod p
        let r = f.add(&pm1, &pm1);
        assert_eq!(f.from_mont(&r), p.sub(&Bn::from_u64(2)));
    }
}
