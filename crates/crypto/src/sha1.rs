//! SHA-1 (FIPS 180-4) — used by the AES128-SHA cipher suite's HMAC.
//!
//! SHA-1 is cryptographically broken for collision resistance but remains
//! in the paper's evaluated cipher suite (AES128-SHA); it is implemented
//! here for fidelity, not as a recommendation.

use crate::hash::Hash;

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize_fixed()
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` has already counted the 0x80; rewind the counter.
        self.total_len = self.total_len.wrapping_sub(1);
        while self.buf_len != 56 {
            self.update(&[0]);
            self.total_len = self.total_len.wrapping_sub(1);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Hash for Sha1 {
    const BLOCK_SIZE: usize = 64;
    const OUTPUT_SIZE: usize = 20;

    fn new() -> Self {
        Sha1::new()
    }

    fn update(&mut self, data: &[u8]) {
        Sha1::update(self, data)
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize_fixed()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..257u16).map(|i| i as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 128, 200, 257] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize_fixed(), Sha1::digest(&data), "split={split}");
        }
    }
}
