//! Deterministic, process-cached test keys.
//!
//! RSA-2048 key generation is too slow to repeat in every test, so a
//! single key is derived once per process from a fixed seed and shared.
//! The derivation is deterministic: every test run and every machine gets
//! the same key material.

use crate::rng::TestRng;
use crate::rsa::RsaPrivateKey;
use std::sync::OnceLock;

static RSA_2048: OnceLock<RsaPrivateKey> = OnceLock::new();
static RSA_1024: OnceLock<RsaPrivateKey> = OnceLock::new();

/// A deterministic RSA-2048 key for tests, examples and benchmarks.
pub fn test_rsa_2048() -> &'static RsaPrivateKey {
    RSA_2048.get_or_init(|| {
        let mut rng = TestRng::new(0x5154_4c53_2048); // "QTLS" 2048
        RsaPrivateKey::generate(2048, &mut rng)
    })
}

/// A deterministic RSA-1024 key (faster; for tests that only need "an RSA
/// key" rather than production-size parameters).
pub fn test_rsa_1024() -> &'static RsaPrivateKey {
    RSA_1024.get_or_init(|| {
        let mut rng = TestRng::new(0x5154_4c53_1024);
        RsaPrivateKey::generate(1024, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_key_is_stable() {
        let a = test_rsa_2048();
        let b = test_rsa_2048();
        assert_eq!(a.public().modulus(), b.public().modulus());
    }
}
