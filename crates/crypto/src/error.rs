//! Error types for the crypto layer.

use core::fmt;

/// Errors produced by cryptographic operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoError {
    /// Message exceeds the capacity of the key/padding scheme.
    MessageTooLong,
    /// Key is too small for the requested encoding.
    KeyTooSmall,
    /// A signature failed verification.
    InvalidSignature,
    /// Ciphertext failed structural or padding checks.
    DecryptionFailed,
    /// A point is not on the curve / not in the group.
    InvalidPoint,
    /// A scalar is out of range (zero or ≥ group order).
    InvalidScalar,
    /// Input length is not acceptable (e.g. non-block-multiple for CBC).
    InvalidLength,
    /// MAC verification failed.
    BadMac,
    /// Malformed padding (CBC).
    BadPadding,
    /// The request was cancelled before the device saw it (e.g. staged
    /// in a submit queue when its worker shut down).
    Cancelled,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CryptoError::MessageTooLong => "message too long",
            CryptoError::KeyTooSmall => "key too small",
            CryptoError::InvalidSignature => "invalid signature",
            CryptoError::DecryptionFailed => "decryption failed",
            CryptoError::InvalidPoint => "invalid curve point",
            CryptoError::InvalidScalar => "invalid scalar",
            CryptoError::InvalidLength => "invalid input length",
            CryptoError::BadMac => "MAC verification failed",
            CryptoError::BadPadding => "bad padding",
            CryptoError::Cancelled => "request cancelled before submission",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CryptoError {}
