//! Arbitrary-precision unsigned integers ("big numbers").
//!
//! This is the arithmetic substrate for RSA and for scalar arithmetic in
//! the elliptic-curve modules. Limbs are 64-bit, little-endian, and the
//! representation is kept normalized (no most-significant zero limbs; the
//! value zero has no limbs at all).
//!
//! The implementation favours clarity over absolute speed everywhere
//! except modular exponentiation, which goes through the Montgomery
//! machinery in [`crate::mont`] — that is the only bignum operation that
//! is hot in TLS processing (RSA sign).

use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bn {
    /// Little-endian 64-bit limbs, normalized.
    limbs: Vec<u64>,
}

impl fmt::Debug for Bn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bn(0x{})", self.to_hex())
    }
}

impl Bn {
    /// The value zero.
    pub fn zero() -> Self {
        Bn { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Bn { limbs: vec![1] }
    }

    /// Construct from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Bn::zero()
        } else {
            Bn { limbs: vec![v] }
        }
    }

    /// Construct from little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Bn { limbs }
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Parse from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Bn::from_limbs(limbs)
    }

    /// Serialize to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse from a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        // Left-pad to an even number of nibbles.
        let padded;
        let s = if s.len() % 2 == 1 {
            padded = format!("0{s}");
            &padded
        } else {
            s
        };
        let mut bytes = Vec::with_capacity(s.len() / 2);
        for i in (0..s.len()).step_by(2) {
            bytes.push(u8::from_str_radix(&s[i..i + 2], 16).ok()?);
        }
        Some(Bn::from_bytes_be(&bytes))
    }

    /// Render as lowercase hex with no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for b in &bytes {
            s.push_str(&format!("{b:02x}"));
        }
        // Strip a single possible leading zero nibble.
        if s.starts_with('0') && s.len() > 1 {
            s.remove(0);
        }
        s
    }

    /// Is this the value zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this the value one?
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Is the low bit set?
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Is the low bit clear (true for zero)?
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to one, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// `self + other`.
    #[allow(clippy::needless_range_loop)] // indexing two slices in lockstep
    pub fn add(&self, other: &Bn) -> Bn {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Bn::from_limbs(out)
    }

    /// `self + v` for a small addend.
    pub fn add_u64(&self, v: u64) -> Bn {
        self.add(&Bn::from_u64(v))
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub(&self, other: &Bn) -> Bn {
        assert!(self >= other, "bignum underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Bn::from_limbs(out)
    }

    /// `self * other` (schoolbook; operand sizes in TLS are ≤ 4096 bits,
    /// where schoolbook with 64-bit limbs is competitive).
    pub fn mul(&self, other: &Bn) -> Bn {
        if self.is_zero() || other.is_zero() {
            return Bn::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Bn::from_limbs(out)
    }

    /// `self << n`.
    pub fn shl(&self, n: usize) -> Bn {
        if self.is_zero() || n == 0 {
            if n == 0 {
                return self.clone();
            }
            return Bn::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Bn::from_limbs(out)
    }

    /// `self >> n`.
    pub fn shr(&self, n: usize) -> Bn {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Bn::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Bn::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        Bn::from_limbs(out)
    }

    /// Quotient and remainder: `(self / div, self % div)`.
    ///
    /// Uses simple binary long division for small divisors and Knuth's
    /// Algorithm D for multi-limb divisors.
    pub fn div_rem(&self, div: &Bn) -> (Bn, Bn) {
        assert!(!div.is_zero(), "division by zero");
        match self.cmp(div) {
            Ordering::Less => return (Bn::zero(), self.clone()),
            Ordering::Equal => return (Bn::one(), Bn::zero()),
            Ordering::Greater => {}
        }
        if div.limbs.len() == 1 {
            let d = div.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            return (Bn::from_limbs(q), Bn::from_u64(rem as u64));
        }
        self.div_rem_knuth(div)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, div: &Bn) -> (Bn, Bn) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = div.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = div.shl(shift);
        let n = v.limbs.len();
        let mut u_limbs = u.limbs.clone();
        u_limbs.push(0); // room for the virtual top limb
        let m = u_limbs.len() - n - 1;
        let v_limbs = &v.limbs;
        let vn1 = v_limbs[n - 1];
        let vn2 = v_limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            let numer = ((u_limbs[j + n] as u128) << 64) | u_limbs[j + n - 1] as u128;
            let mut qhat = numer / vn1 as u128;
            let mut rhat = numer % vn1 as u128;
            // Correct qhat (at most twice).
            while qhat >> 64 != 0
                || qhat * vn2 as u128 > ((rhat << 64) | u_limbs[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v_limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = u_limbs[j + i] as i128 - (p as u64) as i128 + borrow;
                u_limbs[j + i] = t as u64;
                borrow = t >> 64;
            }
            let t = u_limbs[j + n] as i128 - carry as i128 + borrow;
            u_limbs[j + n] = t as u64;
            let neg = t < 0;
            q[j] = qhat as u64;
            if neg {
                // Rare: qhat was one too large; add v back.
                q[j] -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = u_limbs[j + i].overflowing_add(v_limbs[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    u_limbs[j + i] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                u_limbs[j + n] = u_limbs[j + n].wrapping_add(carry);
            }
        }
        let rem = Bn::from_limbs(u_limbs[..n].to_vec()).shr(shift);
        (Bn::from_limbs(q), rem)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Bn) -> Bn {
        self.div_rem(m).1
    }

    /// `(self * other) mod m`.
    pub fn mul_mod(&self, other: &Bn, m: &Bn) -> Bn {
        self.mul(other).rem(m)
    }

    /// `(self + other) mod m`; inputs must already be `< m`.
    pub fn add_mod(&self, other: &Bn, m: &Bn) -> Bn {
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m`; inputs must already be `< m`.
    pub fn sub_mod(&self, other: &Bn, m: &Bn) -> Bn {
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Odd moduli go through Montgomery multiplication; even moduli fall
    /// back to square-and-multiply with full reductions (rare in practice,
    /// present for completeness).
    pub fn mod_exp(&self, exp: &Bn, m: &Bn) -> Bn {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Bn::zero();
        }
        if m.is_odd() {
            let ctx = crate::mont::MontCtx::new(m.clone());
            return ctx.mod_exp(self, exp);
        }
        // Generic square-and-multiply.
        let mut result = Bn::one();
        let mut base = self.rem(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Bn) -> Bn {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse: `self^-1 mod m`, if it exists.
    ///
    /// Extended binary Euclid; works for any modulus `m > 1` coprime with
    /// `self`.
    pub fn mod_inv(&self, m: &Bn) -> Option<Bn> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Signed-value extended Euclid using (value, negative?) pairs.
        let (mut old_r, mut r) = (a, m.clone());
        let (mut old_s, mut s) = ((Bn::one(), false), (Bn::zero(), false));
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = core::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (in signed arithmetic)
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = core::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None; // not coprime
        }
        let (val, neg) = old_s;
        let val = val.rem(m);
        Some(if neg && !val.is_zero() {
            m.sub(&val)
        } else {
            val
        })
    }

    /// Uniformly random value in `[0, bound)` using the given RNG.
    pub fn random_below<R: crate::rng::EntropySource>(rng: &mut R, bound: &Bn) -> Bn {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let top_mask = if bits.is_multiple_of(8) {
            0xff
        } else {
            (1u8 << (bits % 8)) - 1
        };
        // Rejection sampling: expected < 2 iterations.
        loop {
            let mut buf = vec![0u8; bytes];
            rng.fill(&mut buf);
            buf[0] &= top_mask;
            let v = Bn::from_bytes_be(&buf);
            if &v < bound {
                return v;
            }
        }
    }

    /// Random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: crate::rng::EntropySource>(rng: &mut R, bits: usize) -> Bn {
        assert!(bits > 0);
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill(&mut buf);
        let mut v = Bn::from_bytes_be(&buf);
        // Clamp to exactly `bits` bits with the top bit set.
        v = v.rem(&Bn::one().shl(bits));
        v.set_bit(bits - 1);
        v
    }
}

/// Signed subtraction on (magnitude, is_negative) pairs: `a - b`.
fn signed_sub(a: &(Bn, bool), b: &(Bn, bool)) -> (Bn, bool) {
    match (a.1, b.1) {
        (false, true) => (a.0.add(&b.0), false), // a - (-b) = a + b
        (true, false) => (a.0.add(&b.0), true),  // -a - b = -(a + b)
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        (true, true) => {
            // -a - (-b) = b - a
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for Bn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bn {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(Bn::zero().is_zero());
        assert!(Bn::one().is_one());
        assert_eq!(Bn::zero().bit_len(), 0);
        assert_eq!(Bn::one().bit_len(), 1);
        assert!(Bn::zero().is_even());
        assert!(Bn::one().is_odd());
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            assert_eq!(bn(s).to_hex(), s);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let v = bn("0102030405060708090a0b0c0d0e0f");
        assert_eq!(Bn::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(v.to_bytes_be_padded(20).len(), 20);
        assert_eq!(Bn::from_bytes_be(&v.to_bytes_be_padded(20)), v);
    }

    #[test]
    fn add_sub() {
        let a = bn("ffffffffffffffffffffffffffffffff");
        let b = bn("1");
        let s = a.add(&b);
        assert_eq!(s.to_hex(), "100000000000000000000000000000000");
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Bn::one().sub(&bn("2"));
    }

    #[test]
    fn mul_basics() {
        assert_eq!(bn("ff").mul(&bn("ff")).to_hex(), "fe01");
        assert_eq!(
            bn("ffffffffffffffff").mul(&bn("ffffffffffffffff")).to_hex(),
            "fffffffffffffffe0000000000000001"
        );
        assert!(Bn::zero().mul(&bn("deadbeef")).is_zero());
    }

    #[test]
    fn shifts() {
        let v = bn("deadbeef");
        assert_eq!(v.shl(4).to_hex(), "deadbeef0");
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shr(100), Bn::zero());
        assert_eq!(v.shl(0), v);
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = bn("deadbeefcafebabe").div_rem(&bn("10"));
        assert_eq!(q.to_hex(), "deadbeefcafebab");
        assert_eq!(r.to_hex(), "e");
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = bn("1234567890abcdef1234567890abcdef1234567890abcdef");
        let b = bn("fedcba0987654321fedcba0987");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_edge_cases() {
        let a = bn("100000000000000000000000000000000");
        let (q, r) = a.div_rem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());
        let (q, r) = Bn::one().div_rem(&a);
        assert!(q.is_zero());
        assert!(r.is_one());
    }

    #[test]
    fn mod_exp_small() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        let r = bn("3").mod_exp(&bn("7"), &bn("a"));
        assert_eq!(r.to_hex(), "7");
    }

    #[test]
    fn mod_exp_fermat() {
        // Fermat: a^(p-1) = 1 mod p for prime p not dividing a.
        let p = bn("fffffffffffffffffffffffffffffffeffffffffffffffff"); // P-192 prime
        let a = bn("123456789abcdef");
        let r = a.mod_exp(&p.sub(&Bn::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn mod_exp_even_modulus() {
        // 5^3 mod 8 = 125 mod 8 = 5
        let r = bn("5").mod_exp(&bn("3"), &bn("8"));
        assert_eq!(r.to_hex(), "5");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bn("c").gcd(&bn("8")).to_hex(), "4");
        assert_eq!(bn("11").gcd(&bn("13")).to_hex(), "1");
        assert_eq!(Bn::zero().gcd(&bn("5")).to_hex(), "5");
    }

    #[test]
    fn mod_inv_basics() {
        let m = bn("11"); // 17
        for a in 1u64..17 {
            let inv = Bn::from_u64(a).mod_inv(&m).unwrap();
            assert!(Bn::from_u64(a).mul_mod(&inv, &m).is_one(), "a={a}");
        }
        // Not coprime -> None.
        assert!(bn("6").mod_inv(&bn("c")).is_none());
        assert!(Bn::zero().mod_inv(&m).is_none());
    }

    #[test]
    fn mod_inv_large() {
        let m = bn("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        let a = bn("deadbeefcafebabe0123456789abcdef");
        let inv = a.mod_inv(&m).unwrap();
        assert!(a.mul_mod(&inv, &m).is_one());
    }

    #[test]
    fn ordering() {
        assert!(bn("100") > bn("ff"));
        assert!(bn("ff") < bn("100"));
        assert_eq!(bn("abc").cmp(&bn("abc")), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let mut v = Bn::zero();
        v.set_bit(127);
        assert!(v.bit(127));
        assert!(!v.bit(126));
        assert_eq!(v.bit_len(), 128);
    }
}
