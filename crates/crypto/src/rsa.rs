//! RSA: key generation, raw exponentiation with CRT, and PKCS#1 v1.5
//! signing / verification / encryption / decryption — the asymmetric
//! operations of the TLS-RSA and ECDHE-RSA cipher suites.

use crate::bn::Bn;
use crate::error::CryptoError;
use crate::mont::MontCtx;
use crate::prime::gen_prime;
use crate::rng::EntropySource;
use crate::sha256::Sha256;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug)]
pub struct RsaPublicKey {
    n: Bn,
    e: Bn,
    ctx: MontCtx,
}

/// An RSA private key with CRT parameters.
#[derive(Clone, Debug)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    /// Private exponent (kept for completeness; CRT path is used).
    d: Bn,
    p: Bn,
    q: Bn,
    /// `d mod (p-1)`
    dp: Bn,
    /// `d mod (q-1)`
    dq: Bn,
    /// `q^{-1} mod p`
    qinv: Bn,
    ctx_p: MontCtx,
    ctx_q: MontCtx,
}

impl RsaPublicKey {
    /// Construct from modulus and public exponent.
    pub fn new(n: Bn, e: Bn) -> Self {
        let ctx = MontCtx::new(n.clone());
        RsaPublicKey { n, e, ctx }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Bn {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &Bn {
        &self.e
    }

    /// Modulus size in bytes (e.g. 256 for RSA-2048).
    pub fn size(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw public-key operation `m^e mod n`.
    pub fn raw(&self, m: &Bn) -> Bn {
        self.ctx.mod_exp(m, &self.e)
    }

    /// PKCS#1 v1.5 encryption (block type 2) of `msg`.
    pub fn encrypt_pkcs1<R: EntropySource>(
        &self,
        msg: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.size();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong);
        }
        // 00 || 02 || PS (nonzero random) || 00 || msg
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let ps_len = k - msg.len() - 3;
        for b in &mut em[2..2 + ps_len] {
            let mut byte = [0u8];
            loop {
                rng.fill(&mut byte);
                if byte[0] != 0 {
                    break;
                }
            }
            *b = byte[0];
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(msg);
        let c = self.raw(&Bn::from_bytes_be(&em));
        Ok(c.to_bytes_be_padded(k))
    }

    /// PKCS#1 v1.5 signature verification with SHA-256 digest info.
    pub fn verify_pkcs1_sha256(&self, msg: &[u8], sig: &[u8]) -> Result<(), CryptoError> {
        let k = self.size();
        if sig.len() != k {
            return Err(CryptoError::InvalidSignature);
        }
        let s = Bn::from_bytes_be(sig);
        if s >= self.n {
            return Err(CryptoError::InvalidSignature);
        }
        let em = self.raw(&s).to_bytes_be_padded(k);
        let expected = pkcs1_sha256_em(msg, k)?;
        // Not secret data; plain comparison is fine for verification.
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

impl RsaPrivateKey {
    /// Generate a fresh key with modulus size `bits` and `e = 65537`.
    pub fn generate<R: EntropySource>(bits: usize, rng: &mut R) -> Self {
        assert!(
            bits >= 128 && bits.is_multiple_of(2),
            "unsupported key size"
        );
        let e = Bn::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let one = Bn::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let d = e.mod_inv(&phi).expect("gcd checked");
            return Self::from_parts(n, e, d, p, q);
        }
    }

    /// Assemble a key from `(n, e, d, p, q)`, deriving the CRT parameters.
    pub fn from_parts(n: Bn, e: Bn, d: Bn, p: Bn, q: Bn) -> Self {
        let one = Bn::one();
        let dp = d.rem(&p.sub(&one));
        let dq = d.rem(&q.sub(&one));
        let qinv = q.mod_inv(&p).expect("p, q prime");
        let ctx_p = MontCtx::new(p.clone());
        let ctx_q = MontCtx::new(q.clone());
        RsaPrivateKey {
            public: RsaPublicKey::new(n, e),
            d,
            p,
            q,
            dp,
            dq,
            qinv,
            ctx_p,
            ctx_q,
        }
    }

    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent.
    pub fn d(&self) -> &Bn {
        &self.d
    }

    /// The prime factors `(p, q)`.
    pub fn primes(&self) -> (&Bn, &Bn) {
        (&self.p, &self.q)
    }

    /// Raw private-key operation `c^d mod n` using the Chinese Remainder
    /// Theorem (≈4x faster than a direct `mod_exp` on `n`).
    pub fn raw(&self, c: &Bn) -> Bn {
        let m1 = self.ctx_p.mod_exp(&c.rem(&self.p), &self.dp);
        let m2 = self.ctx_q.mod_exp(&c.rem(&self.q), &self.dq);
        // h = qinv * (m1 - m2) mod p
        let diff = m1.sub_mod(&m2.rem(&self.p), &self.p);
        let h = self.qinv.mul_mod(&diff, &self.p);
        m2.add(&q_mul(&self.q, &h))
    }

    /// PKCS#1 v1.5 signature with SHA-256 digest info.
    pub fn sign_pkcs1_sha256(&self, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.size();
        let em = pkcs1_sha256_em(msg, k)?;
        let s = self.raw(&Bn::from_bytes_be(&em));
        Ok(s.to_bytes_be_padded(k))
    }

    /// PKCS#1 v1.5 decryption (block type 2).
    pub fn decrypt_pkcs1(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.size();
        if ciphertext.len() != k || k < 11 {
            return Err(CryptoError::DecryptionFailed);
        }
        let c = Bn::from_bytes_be(ciphertext);
        if &c >= self.public.modulus() {
            return Err(CryptoError::DecryptionFailed);
        }
        let em = self.raw(&c).to_bytes_be_padded(k);
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::DecryptionFailed);
        }
        // Find the 0x00 separator after at least 8 padding bytes.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::DecryptionFailed)?;
        if sep < 8 {
            return Err(CryptoError::DecryptionFailed);
        }
        Ok(em[sep + 3..].to_vec())
    }
}

/// `q * h` (helper naming the CRT recombination step).
fn q_mul(q: &Bn, h: &Bn) -> Bn {
    q.mul(h)
}

/// DER prefix of the SHA-256 `DigestInfo` structure (RFC 8017 §9.2).
const SHA256_DIGEST_INFO: &[u8] = &[
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `k` bytes.
fn pkcs1_sha256_em(msg: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = Sha256::digest(msg);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::KeyTooSmall);
    }
    // 00 || 01 || FF.. || 00 || DigestInfo || digest
    let mut em = vec![0xffu8; k];
    em[0] = 0x00;
    em[1] = 0x01;
    let sep = k - t_len - 1;
    em[sep] = 0x00;
    em[sep + 1..sep + 1 + SHA256_DIGEST_INFO.len()].copy_from_slice(SHA256_DIGEST_INFO);
    em[k - digest.len()..].copy_from_slice(&digest);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;
    use crate::test_keys::test_rsa_2048;

    #[test]
    fn keygen_roundtrip_small() {
        let mut rng = TestRng::new(11);
        let key = RsaPrivateKey::generate(512, &mut rng);
        assert_eq!(key.public().modulus().bit_len(), 512);
        let msg = b"hello QTLS";
        let sig = key.sign_pkcs1_sha256(msg).unwrap();
        key.public().verify_pkcs1_sha256(msg, &sig).unwrap();
        assert!(key.public().verify_pkcs1_sha256(b"tampered", &sig).is_err());
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let mut rng = TestRng::new(12);
        let key = RsaPrivateKey::generate(256, &mut rng);
        let m = Bn::from_hex("123456789abcdef").unwrap();
        let via_crt = key.raw(&m);
        let plain = m.mod_exp(key.d(), key.public().modulus());
        assert_eq!(via_crt, plain);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = TestRng::new(13);
        let key = RsaPrivateKey::generate(512, &mut rng);
        let msg = b"premaster secret bytes";
        let ct = key.public().encrypt_pkcs1(msg, &mut rng).unwrap();
        assert_eq!(ct.len(), key.public().size());
        let pt = key.decrypt_pkcs1(&ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn decrypt_rejects_bad_padding() {
        let mut rng = TestRng::new(14);
        let key = RsaPrivateKey::generate(512, &mut rng);
        let garbage = vec![0x17u8; key.public().size()];
        assert!(key.decrypt_pkcs1(&garbage).is_err());
    }

    #[test]
    fn message_too_long_rejected() {
        let mut rng = TestRng::new(15);
        let key = RsaPrivateKey::generate(256, &mut rng);
        let too_long = vec![0u8; key.public().size()];
        assert!(matches!(
            key.public().encrypt_pkcs1(&too_long, &mut rng),
            Err(CryptoError::MessageTooLong)
        ));
    }

    #[test]
    fn embedded_2048_key_sign_verify() {
        let key = test_rsa_2048();
        assert_eq!(key.public().modulus().bit_len(), 2048);
        let msg = b"TLS server key exchange params";
        let sig = key.sign_pkcs1_sha256(msg).unwrap();
        assert_eq!(sig.len(), 256);
        key.public().verify_pkcs1_sha256(msg, &sig).unwrap();
    }

    #[test]
    fn embedded_2048_key_encrypt_decrypt() {
        let key = test_rsa_2048();
        let mut rng = TestRng::new(16);
        let premaster = {
            let mut b = vec![0u8; 48];
            rng.fill(&mut b);
            b
        };
        let ct = key.public().encrypt_pkcs1(&premaster, &mut rng).unwrap();
        assert_eq!(key.decrypt_pkcs1(&ct).unwrap(), premaster);
    }

    #[test]
    fn signature_is_deterministic() {
        let key = test_rsa_2048();
        let a = key.sign_pkcs1_sha256(b"same message").unwrap();
        let b = key.sign_pkcs1_sha256(b"same message").unwrap();
        assert_eq!(a, b);
    }
}
