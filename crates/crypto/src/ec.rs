//! Elliptic curves over prime fields: NIST P-256 and P-384.
//!
//! Short-Weierstrass curves `y^2 = x^3 + ax + b` with Jacobian-coordinate
//! point arithmetic over the fixed-width Montgomery fields of
//! [`crate::fp`]. Scalar multiplication uses a 4-bit fixed window.
//!
//! NOTE: this implementation is for the QTLS reproduction — it is
//! algorithmically correct (validated against the NIST group structure
//! and cross-checked sign/verify/ECDH tests) but NOT hardened against
//! timing side channels.

use crate::bn::Bn;
use crate::fp::FpParams;

/// An affine point (or infinity) with coordinates as plain integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffinePoint {
    /// x coordinate (ignored when `infinity`).
    pub x: Bn,
    /// y coordinate (ignored when `infinity`).
    pub y: Bn,
    /// The point at infinity flag.
    pub infinity: bool,
}

impl AffinePoint {
    /// The point at infinity.
    pub fn infinity() -> Self {
        AffinePoint {
            x: Bn::zero(),
            y: Bn::zero(),
            infinity: true,
        }
    }

    /// A finite point.
    pub fn new(x: Bn, y: Bn) -> Self {
        AffinePoint {
            x,
            y,
            infinity: false,
        }
    }
}

/// A prime-field short-Weierstrass curve with `N`-limb field elements.
pub struct PrimeCurve<const N: usize> {
    /// Field arithmetic context.
    pub field: FpParams<N>,
    /// Curve coefficient `a` (Montgomery form).
    a: [u64; N],
    /// Curve coefficient `b` (Montgomery form).
    b: [u64; N],
    /// Base point (Montgomery affine coordinates).
    gx: [u64; N],
    gy: [u64; N],
    /// Group order `n`.
    pub order: Bn,
    /// Field size in bytes (for point encoding).
    pub byte_len: usize,
}

/// A point in Jacobian coordinates, elements in Montgomery form.
#[derive(Clone, Copy)]
struct Jacobian<const N: usize> {
    x: [u64; N],
    y: [u64; N],
    z: [u64; N],
}

impl<const N: usize> PrimeCurve<N> {
    /// Construct from hex parameters.
    pub fn from_hex(p: &str, a: &str, b: &str, gx: &str, gy: &str, n: &str) -> Self {
        let p_bn = Bn::from_hex(p).unwrap();
        let field = FpParams::<N>::new(&p_bn);
        let byte_len = p_bn.bit_len().div_ceil(8);
        PrimeCurve {
            a: field.to_mont(&Bn::from_hex(a).unwrap()),
            b: field.to_mont(&Bn::from_hex(b).unwrap()),
            gx: field.to_mont(&Bn::from_hex(gx).unwrap()),
            gy: field.to_mont(&Bn::from_hex(gy).unwrap()),
            order: Bn::from_hex(n).unwrap(),
            byte_len,
            field,
        }
    }

    /// The base point G in affine coordinates.
    pub fn generator(&self) -> AffinePoint {
        AffinePoint::new(
            self.field.from_mont(&self.gx),
            self.field.from_mont(&self.gy),
        )
    }

    /// Is `pt` on the curve (and not infinity)?
    pub fn is_on_curve(&self, pt: &AffinePoint) -> bool {
        if pt.infinity {
            return false;
        }
        if pt.x >= self.field.modulus_bn() || pt.y >= self.field.modulus_bn() {
            return false;
        }
        let f = &self.field;
        let x = f.to_mont(&pt.x);
        let y = f.to_mont(&pt.y);
        // y^2 == x^3 + a x + b
        let lhs = f.sqr(&y);
        let rhs = f.add(&f.add(&f.mul(&f.sqr(&x), &x), &f.mul(&self.a, &x)), &self.b);
        f.eq(&lhs, &rhs)
    }

    fn to_jacobian(&self, pt: &AffinePoint) -> Jacobian<N> {
        if pt.infinity {
            return self.jac_infinity();
        }
        Jacobian {
            x: self.field.to_mont(&pt.x),
            y: self.field.to_mont(&pt.y),
            z: self.field.one,
        }
    }

    fn jac_infinity(&self) -> Jacobian<N> {
        Jacobian {
            x: self.field.one,
            y: self.field.one,
            z: self.field.zero(),
        }
    }

    fn is_jac_infinity(&self, p: &Jacobian<N>) -> bool {
        self.field.is_zero(&p.z)
    }

    fn to_affine(&self, p: &Jacobian<N>) -> AffinePoint {
        if self.is_jac_infinity(p) {
            return AffinePoint::infinity();
        }
        let f = &self.field;
        let zi = f.inv(&p.z);
        let zi2 = f.sqr(&zi);
        let zi3 = f.mul(&zi2, &zi);
        AffinePoint::new(
            f.from_mont(&f.mul(&p.x, &zi2)),
            f.from_mont(&f.mul(&p.y, &zi3)),
        )
    }

    /// Jacobian point doubling (general `a`).
    fn dbl(&self, p: &Jacobian<N>) -> Jacobian<N> {
        let f = &self.field;
        if self.is_jac_infinity(p) || f.is_zero(&p.y) {
            return self.jac_infinity();
        }
        // S = 4 X Y^2
        let y2 = f.sqr(&p.y);
        let s = f.mul(&p.x, &y2);
        let s = f.add(&s, &s);
        let s = f.add(&s, &s);
        // M = 3 X^2 + a Z^4
        let x2 = f.sqr(&p.x);
        let m = f.add(&f.add(&x2, &x2), &x2);
        let z2 = f.sqr(&p.z);
        let m = f.add(&m, &f.mul(&self.a, &f.sqr(&z2)));
        // X' = M^2 - 2S
        let x3 = f.sub(&f.sub(&f.sqr(&m), &s), &s);
        // Y' = M (S - X') - 8 Y^4
        let y4 = f.sqr(&y2);
        let y4_8 = {
            let t = f.add(&y4, &y4);
            let t = f.add(&t, &t);
            f.add(&t, &t)
        };
        let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &y4_8);
        // Z' = 2 Y Z
        let yz = f.mul(&p.y, &p.z);
        let z3 = f.add(&yz, &yz);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Jacobian point addition.
    fn add_jac(&self, p: &Jacobian<N>, q: &Jacobian<N>) -> Jacobian<N> {
        let f = &self.field;
        if self.is_jac_infinity(p) {
            return *q;
        }
        if self.is_jac_infinity(q) {
            return *p;
        }
        let z1z1 = f.sqr(&p.z);
        let z2z2 = f.sqr(&q.z);
        let u1 = f.mul(&p.x, &z2z2);
        let u2 = f.mul(&q.x, &z1z1);
        let s1 = f.mul(&f.mul(&p.y, &z2z2), &q.z);
        let s2 = f.mul(&f.mul(&q.y, &z1z1), &p.z);
        let h = f.sub(&u2, &u1);
        let r = f.sub(&s2, &s1);
        if f.is_zero(&h) {
            if f.is_zero(&r) {
                return self.dbl(p);
            }
            return self.jac_infinity();
        }
        let h2 = f.sqr(&h);
        let h3 = f.mul(&h2, &h);
        let u1h2 = f.mul(&u1, &h2);
        // X3 = r^2 - H^3 - 2 U1 H^2
        let x3 = f.sub(&f.sub(&f.sqr(&r), &h3), &f.add(&u1h2, &u1h2));
        // Y3 = r (U1 H^2 - X3) - S1 H^3
        let y3 = f.sub(&f.mul(&r, &f.sub(&u1h2, &x3)), &f.mul(&s1, &h3));
        // Z3 = Z1 Z2 H
        let z3 = f.mul(&f.mul(&p.z, &q.z), &h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication `k * pt` with a 4-bit fixed window.
    pub fn scalar_mul(&self, pt: &AffinePoint, k: &Bn) -> AffinePoint {
        if k.is_zero() || pt.infinity {
            return AffinePoint::infinity();
        }
        let base = self.to_jacobian(pt);
        // table[i] = i * pt for i in 0..16
        let mut table = Vec::with_capacity(16);
        table.push(self.jac_infinity());
        table.push(base);
        for i in 2..16 {
            if i % 2 == 0 {
                table.push(self.dbl(&table[i / 2]));
            } else {
                table.push(self.add_jac(&table[i - 1], &base));
            }
        }
        let bits = k.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = self.jac_infinity();
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = self.dbl(&acc);
            }
            let mut idx = 0usize;
            for b in 0..4 {
                let bit = w * 4 + (3 - b);
                idx = (idx << 1) | k.bit(bit) as usize;
            }
            if idx != 0 {
                acc = self.add_jac(&acc, &table[idx]);
            }
        }
        self.to_affine(&acc)
    }

    /// `k * G`.
    pub fn scalar_mul_base(&self, k: &Bn) -> AffinePoint {
        let g = AffinePoint::new(
            self.field.from_mont(&self.gx),
            self.field.from_mont(&self.gy),
        );
        self.scalar_mul(&g, k)
    }

    /// Point addition on affine points (for tests/verification).
    pub fn add_points(&self, p: &AffinePoint, q: &AffinePoint) -> AffinePoint {
        let r = self.add_jac(&self.to_jacobian(p), &self.to_jacobian(q));
        self.to_affine(&r)
    }

    /// Sum of two scalar multiplications `u1*G + u2*Q` (ECDSA verify).
    pub fn double_scalar_mul(&self, u1: &Bn, u2: &Bn, q: &AffinePoint) -> AffinePoint {
        // Straightforward: two windowed multiplications and an add.
        let a = self.to_jacobian(&self.scalar_mul_base(u1));
        let b = self.to_jacobian(&self.scalar_mul(q, u2));
        self.to_affine(&self.add_jac(&a, &b))
    }
}

/// NIST P-256 (secp256r1).
pub fn p256() -> &'static PrimeCurve<4> {
    use std::sync::OnceLock;
    static CURVE: OnceLock<PrimeCurve<4>> = OnceLock::new();
    CURVE.get_or_init(|| {
        PrimeCurve::from_hex(
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
            "ffffffff00000001000000000000000000000000fffffffffffffffffffffffc",
            "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
            "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
            "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
        )
    })
}

/// NIST P-384 (secp384r1).
pub fn p384() -> &'static PrimeCurve<6> {
    use std::sync::OnceLock;
    static CURVE: OnceLock<PrimeCurve<6>> = OnceLock::new();
    CURVE.get_or_init(|| {
        PrimeCurve::from_hex(
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe\
             ffffffff0000000000000000ffffffff",
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe\
             ffffffff0000000000000000fffffffc",
            "b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314088f5013875a\
             c656398d8a2ed19d2a85c8edd3ec2aef",
            "aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f741e082542a38\
             5502f25dbf55296c3a545e3872760ab7",
            "3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da3113b5f0b8c0\
             0a60b1ce1d7e819d7a431d7c90ea0e5f",
            "ffffffffffffffffffffffffffffffffffffffffffffffffc7634d81f4372ddf\
             581a0db248b0a77aecec196accc52973",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p256_generator_on_curve() {
        let c = p256();
        assert!(c.is_on_curve(&c.generator()));
    }

    #[test]
    fn p384_generator_on_curve() {
        let c = p384();
        assert!(c.is_on_curve(&c.generator()));
    }

    #[test]
    fn p256_group_order() {
        let c = p256();
        // n * G = infinity
        assert!(c.scalar_mul_base(&c.order).infinity);
        // (n-1) * G = -G
        let neg_g = c.scalar_mul_base(&c.order.sub(&Bn::one()));
        let g = c.generator();
        assert_eq!(neg_g.x, g.x);
        assert_eq!(neg_g.y, c.field.modulus_bn().sub(&g.y));
    }

    #[test]
    fn p384_group_order() {
        let c = p384();
        assert!(c.scalar_mul_base(&c.order).infinity);
    }

    #[test]
    fn p256_known_multiple() {
        // 2G for P-256 (public test vector).
        let c = p256();
        let two_g = c.scalar_mul_base(&Bn::from_u64(2));
        assert_eq!(
            two_g.x.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
        );
        assert_eq!(
            two_g.y.to_hex(),
            "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
        );
    }

    #[test]
    fn scalar_mul_distributes() {
        let c = p256();
        let k1 = Bn::from_hex("1234567890abcdef").unwrap();
        let k2 = Bn::from_hex("fedcba9876543210").unwrap();
        let sum_scalar = k1.add(&k2);
        let lhs = c.scalar_mul_base(&sum_scalar);
        let rhs = c.add_points(&c.scalar_mul_base(&k1), &c.scalar_mul_base(&k2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn add_doubling_consistency() {
        let c = p256();
        let g = c.generator();
        let g2a = c.add_points(&g, &g);
        let g2b = c.scalar_mul_base(&Bn::from_u64(2));
        assert_eq!(g2a, g2b);
        // P + (-P) = infinity
        let neg_g = AffinePoint::new(g.x.clone(), c.field.modulus_bn().sub(&g.y));
        assert!(c.add_points(&g, &neg_g).infinity);
        // P + infinity = P
        assert_eq!(c.add_points(&g, &AffinePoint::infinity()), g);
    }

    #[test]
    fn off_curve_rejected() {
        let c = p256();
        let bogus = AffinePoint::new(Bn::from_u64(1), Bn::from_u64(1));
        assert!(!c.is_on_curve(&bogus));
        assert!(!c.is_on_curve(&AffinePoint::infinity()));
    }

    #[test]
    fn double_scalar_mul_matches() {
        let c = p256();
        let q = c.scalar_mul_base(&Bn::from_u64(99));
        let u1 = Bn::from_u64(7);
        let u2 = Bn::from_u64(13);
        let direct = c.double_scalar_mul(&u1, &u2, &q);
        // 7G + 13*99G = (7 + 1287) G
        let expect = c.scalar_mul_base(&Bn::from_u64(7 + 13 * 99));
        assert_eq!(direct, expect);
    }
}
