//! Arithmetic in binary fields GF(2^m) with polynomial basis, for the
//! NIST binary curves B-283/K-283 (m = 283) and B-409/K-409 (m = 409).
//!
//! Elements are bit vectors packed into `L = ceil(m/64)` little-endian
//! 64-bit words. Addition is XOR; multiplication is a 4-bit-window comb
//! followed by word-level reduction by the field polynomial
//! `x^m + sum(x^tap)`.

/// A binary field GF(2^m) defined by its reduction pentanomial/trinomial.
#[derive(Clone, Debug)]
pub struct Gf2m {
    /// Extension degree `m`.
    pub m: usize,
    /// Exponents of the reduction polynomial besides `m` (includes 0).
    /// E.g. B-283 uses `x^283 + x^12 + x^7 + x^5 + 1` → `[12, 7, 5, 0]`.
    pub taps: Vec<usize>,
    /// Number of 64-bit words per element.
    pub words: usize,
}

/// A field element: little-endian packed bits, `words` words long.
pub type El = Vec<u64>;

impl Gf2m {
    /// Define GF(2^m) with the given reduction taps (must include 0).
    pub fn new(m: usize, taps: &[usize]) -> Self {
        assert!(taps.contains(&0), "reduction polynomial must include x^0");
        // Single-pass word-level reduction requires each fold to land
        // strictly below the word being folded: t <= m - 64. True for all
        // NIST binary-field polynomials (283: taps ≤ 12; 409: tap 87).
        assert!(taps.iter().all(|&t| t + 64 <= m), "tap too close to m");
        Gf2m {
            m,
            taps: taps.to_vec(),
            words: m.div_ceil(64),
        }
    }

    /// The zero element.
    pub fn zero(&self) -> El {
        vec![0u64; self.words]
    }

    /// The one element.
    pub fn one(&self) -> El {
        let mut v = self.zero();
        v[0] = 1;
        v
    }

    /// Is `a` zero?
    pub fn is_zero(&self, a: &El) -> bool {
        a.iter().all(|&w| w == 0)
    }

    /// Parse from big-endian hex (e.g. NIST curve constants).
    pub fn from_hex(&self, s: &str) -> El {
        let bn = crate::bn::Bn::from_hex(s).expect("invalid hex");
        self.from_bn(&bn)
    }

    /// From a `Bn` bit pattern (must fit in m bits).
    pub fn from_bn(&self, v: &crate::bn::Bn) -> El {
        assert!(v.bit_len() <= self.m, "element exceeds field size");
        let mut out = self.zero();
        out[..v.limbs().len()].copy_from_slice(v.limbs());
        out
    }

    /// To a `Bn` bit pattern.
    pub fn to_bn(&self, a: &El) -> crate::bn::Bn {
        crate::bn::Bn::from_limbs(a.clone())
    }

    /// Field addition (XOR).
    pub fn add(&self, a: &El, b: &El) -> El {
        a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect()
    }

    /// Field multiplication.
    pub fn mul(&self, a: &El, b: &El) -> El {
        let mut wide = self.mul_wide(a, b);
        self.reduce(&mut wide)
    }

    /// Field squaring (bit spreading + reduction).
    pub fn sqr(&self, a: &El) -> El {
        let mut wide = vec![0u64; 2 * self.words];
        for (i, &w) in a.iter().enumerate() {
            let (lo, hi) = spread_u64(w);
            wide[2 * i] = lo;
            wide[2 * i + 1] = hi;
        }
        self.reduce(&mut wide)
    }

    /// Carry-less polynomial multiplication, 4-bit window comb.
    fn mul_wide(&self, a: &El, b: &El) -> Vec<u64> {
        let l = self.words;
        // Precompute v * b for v in 0..16 (each l+1 words: up to 3 bits overflow).
        let mut table = vec![vec![0u64; l + 1]; 16];
        for v in 1..16u64 {
            // table[v] = table[v & (v-1)] ^ (b << tz(v))  — build from
            // single-bit shifts.
            let tz = v.trailing_zeros() as usize;
            let prev = (v & (v - 1)) as usize;
            let mut shifted = vec![0u64; l + 1];
            // b << tz (tz in 0..4)
            if tz == 0 {
                shifted[..l].copy_from_slice(b);
            } else {
                let mut carry = 0u64;
                for i in 0..l {
                    shifted[i] = (b[i] << tz) | carry;
                    carry = b[i] >> (64 - tz);
                }
                shifted[l] = carry;
            }
            for i in 0..=l {
                table[v as usize][i] = table[prev][i] ^ shifted[i];
            }
        }
        let mut out = vec![0u64; 2 * l + 1];
        // Process a's nibbles from most significant to least.
        for nib in (0..16).rev() {
            if nib != 15 {
                // out <<= 4
                let mut carry = 0u64;
                for w in out.iter_mut() {
                    let nc = *w >> 60;
                    *w = (*w << 4) | carry;
                    carry = nc;
                }
                debug_assert_eq!(carry, 0);
            }
            let shift = nib * 4;
            for (i, &aw) in a.iter().enumerate() {
                let v = ((aw >> shift) & 0xf) as usize;
                if v != 0 {
                    for (j, &tw) in table[v].iter().enumerate() {
                        out[i + j] ^= tw;
                    }
                }
            }
        }
        out.truncate(2 * l);
        out
    }

    /// Reduce a `2 * words`-word polynomial modulo the field polynomial.
    ///
    /// Single top-down pass over the high words: the constructor asserts
    /// `t <= m - 64` for every tap, which guarantees each fold lands
    /// strictly below the word being folded (so nothing is reintroduced
    /// above the current position).
    fn reduce(&self, c: &mut [u64]) -> El {
        let l = self.words;
        let m = self.m;
        // Fold whole high words: bit (i*64 + k) maps to bits
        // (i*64 + k - m + t) for each tap t.
        for i in (l..2 * l).rev() {
            let w = c[i];
            if w == 0 {
                continue;
            }
            c[i] = 0;
            for &t in &self.taps {
                let pos = i * 64 + t - m;
                let wi = pos / 64;
                let sh = pos % 64;
                c[wi] ^= w << sh;
                if sh != 0 {
                    c[wi + 1] ^= w >> (64 - sh);
                }
            }
        }
        // Fold the residual bits of word l-1 above bit position m.
        let top_bits = m % 64;
        if top_bits != 0 {
            let w = c[l - 1] >> top_bits;
            if w != 0 {
                c[l - 1] &= (1u64 << top_bits) - 1;
                for &t in &self.taps {
                    let wi = t / 64;
                    let sh = t % 64;
                    c[wi] ^= w << sh;
                    if sh != 0 {
                        c[wi + 1] ^= w >> (64 - sh);
                    }
                }
                // `w` has at most 64 - top_bits bits and taps satisfy
                // t + 64 <= m, so this fold cannot reach bit m again.
                debug_assert_eq!(c[l - 1] >> top_bits, 0);
            }
        }
        c[..l].to_vec()
    }

    /// Degree of the polynomial `a` (-1 for zero).
    fn degree(a: &[u64]) -> isize {
        for i in (0..a.len()).rev() {
            if a[i] != 0 {
                return (i * 64 + 63 - a[i].leading_zeros() as usize) as isize;
            }
        }
        -1
    }

    /// Field inversion by the binary polynomial extended Euclidean
    /// algorithm. Panics on zero.
    pub fn inv(&self, a: &El) -> El {
        assert!(!self.is_zero(a), "inversion of zero");
        let l = self.words;
        let work = l + 1;
        // u = a, v = f (the reduction polynomial, m+1 bits).
        let mut u = vec![0u64; work];
        u[..l].copy_from_slice(a);
        let mut v = vec![0u64; work];
        v[self.m / 64] |= 1u64 << (self.m % 64);
        for &t in &self.taps {
            v[t / 64] ^= 1u64 << (t % 64);
        }
        let mut g1 = vec![0u64; work];
        g1[0] = 1;
        let mut g2 = vec![0u64; work];
        while Self::degree(&u) > 0 {
            let mut j = Self::degree(&u) - Self::degree(&v);
            if j < 0 {
                core::mem::swap(&mut u, &mut v);
                core::mem::swap(&mut g1, &mut g2);
                j = -j;
            }
            xor_shifted(&mut u, &v, j as usize);
            xor_shifted(&mut g1, &g2, j as usize);
        }
        debug_assert_eq!(Self::degree(&u), 0, "input not invertible");
        // g1 has degree < m; truncate to element width.
        let mut out = g1;
        out.truncate(l);
        // If m % 64 == 0 this is exact; otherwise mask the top word.
        let top_bits = self.m % 64;
        if top_bits != 0 {
            out[l - 1] &= (1u64 << top_bits) - 1;
        }
        out
    }

    /// Solve `z^2 + z = c` via the half-trace (valid for odd `m`).
    /// Returns `None` if no solution exists (trace(c) == 1).
    pub fn solve_quadratic(&self, c: &El) -> Option<El> {
        assert!(self.m % 2 == 1, "half-trace requires odd m");
        // H(c) = sum_{i=0}^{(m-1)/2} c^(2^(2i))
        let mut z = c.clone();
        let mut acc = c.clone();
        for _ in 0..(self.m - 1) / 2 {
            acc = self.sqr(&self.sqr(&acc));
            z = self.add(&z, &acc);
        }
        // Verify: z^2 + z == c
        let check = self.add(&self.sqr(&z), &z);
        if check == *c {
            Some(z)
        } else {
            None
        }
    }
}

/// `a ^= b << j` where `j` is a bit shift (a and b same length; bits
/// shifted beyond `a` are asserted zero in debug).
fn xor_shifted(a: &mut [u64], b: &[u64], j: usize) {
    let wshift = j / 64;
    let bshift = j % 64;
    if bshift == 0 {
        for i in (wshift..a.len()).rev() {
            a[i] ^= b[i - wshift];
        }
    } else {
        for i in (wshift..a.len()).rev() {
            let lo = b[i - wshift] << bshift;
            let hi = if i - wshift > 0 {
                b[i - wshift - 1] >> (64 - bshift)
            } else {
                0
            };
            a[i] ^= lo | hi;
        }
    }
}

/// Spread the bits of `w` so bit i goes to bit 2i (squaring in GF(2)[x]).
fn spread_u64(w: u64) -> (u64, u64) {
    fn spread32(x: u32) -> u64 {
        let mut v = x as u64;
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (spread32(w as u32), spread32((w >> 32) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f283() -> Gf2m {
        Gf2m::new(283, &[12, 7, 5, 0])
    }

    fn f409() -> Gf2m {
        Gf2m::new(409, &[87, 0])
    }

    #[test]
    fn small_field_gf2_127() {
        // GF(2^127) with the irreducible trinomial x^127 + x + 1.
        let f = Gf2m::new(127, &[1, 0]);
        // x^126 * x = x^127 = x + 1.
        let x126 = {
            let mut v = f.zero();
            v[1] = 1u64 << 62;
            v
        };
        let x = f.from_hex("2");
        assert_eq!(f.mul(&x126, &x), f.from_hex("3"));
        // Inverses for a few elements.
        for v in [1u64, 2, 3, 0xdeadbeef, u64::MAX] {
            let e = vec![v, 0];
            let inv = f.inv(&e);
            assert_eq!(f.mul(&e, &inv), f.one(), "v={v}");
        }
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        let f = f283();
        let a =
            f.from_hex("5f939258db7dd90e1934f8c70b0dfec2eed25b8557eac9c80e2e198f8cdbecd86b12053");
        let b =
            f.from_hex("27b680ac8b8596da5a4af8a19a0303fca97fd7645309fa2a581485af6263e313b79a2f5");
        assert_eq!(f.add(&a, &a), f.zero());
        assert_eq!(f.add(&f.add(&a, &b), &b), a);
    }

    #[test]
    fn mul_identity_and_zero() {
        let f = f283();
        let a = f.from_hex("123456789abcdef123456789abcdef123456789abcdef");
        assert_eq!(f.mul(&a, &f.one()), a);
        assert_eq!(f.mul(&a, &f.zero()), f.zero());
    }

    #[test]
    fn mul_commutative_associative_283() {
        let f = f283();
        let a =
            f.from_hex("5f939258db7dd90e1934f8c70b0dfec2eed25b8557eac9c80e2e198f8cdbecd86b12053");
        let b =
            f.from_hex("27b680ac8b8596da5a4af8a19a0303fca97fd7645309fa2a581485af6263e313b79a2f5");
        let c =
            f.from_hex("3676854fe24141cb98fe6d4b20d02b4516ff702350eddb0826779c813f0df45be8112f4");
        assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        // Distributivity.
        assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
    }

    #[test]
    fn sqr_matches_mul() {
        for f in [f283(), f409()] {
            let a = f.from_hex(
                "1ccda380f1c9e318d90f95d07e5426fe87e45c0e8184698e45962364e34116177dd2259",
            );
            assert_eq!(f.sqr(&a), f.mul(&a, &a));
            let one = f.one();
            assert_eq!(f.sqr(&one), one);
        }
    }

    #[test]
    fn inv_roundtrip_283() {
        let f = f283();
        let a =
            f.from_hex("5f939258db7dd90e1934f8c70b0dfec2eed25b8557eac9c80e2e198f8cdbecd86b12053");
        let ai = f.inv(&a);
        assert_eq!(f.mul(&a, &ai), f.one());
        assert_eq!(f.inv(&f.one()), f.one());
    }

    #[test]
    fn inv_roundtrip_409() {
        let f = f409();
        let a = f.from_hex("60f05f658f49c1ad3ab1890f7184210efd0987e307c84c27accfb8f9f67cc2c460189eb5aaaa62ee222eb1b35540cfe9023746");
        let ai = f.inv(&a);
        assert_eq!(f.mul(&a, &ai), f.one());
    }

    #[test]
    fn fermat_little_theorem_283() {
        // a^(2^m - 1) = 1 for nonzero a: equivalently a^(2^m) = a.
        // Compute a^(2^m) by m squarings.
        let f = f283();
        let a = f.from_hex("abcdef0123456789abcdef0123456789");
        let mut v = a.clone();
        for _ in 0..283 {
            v = f.sqr(&v);
        }
        assert_eq!(v, a);
    }

    #[test]
    fn fermat_little_theorem_409() {
        let f = f409();
        let a = f.from_hex("deadbeefcafebabe0123456789");
        let mut v = a.clone();
        for _ in 0..409 {
            v = f.sqr(&v);
        }
        assert_eq!(v, a);
    }

    #[test]
    fn solve_quadratic_halftrace() {
        let f = f283();
        // For any z, c = z^2 + z must be solvable and the solutions are
        // {z, z+1}.
        let z = f.from_hex("123456789abcdef");
        let c = f.add(&f.sqr(&z), &z);
        let sol = f.solve_quadratic(&c).expect("must be solvable");
        let alt = f.add(&sol, &f.one());
        assert!(sol == z || alt == z);
    }

    #[test]
    fn spread_bits() {
        let (lo, hi) = spread_u64(0b1011);
        assert_eq!(lo, 0b1000101);
        assert_eq!(hi, 0);
        let (lo, hi) = spread_u64(1u64 << 63);
        assert_eq!(lo, 0);
        assert_eq!(hi, 1u64 << 62);
    }
}
