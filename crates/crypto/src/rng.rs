//! Entropy sources and a deterministic test RNG.
//!
//! All randomness consumed by the crypto layer flows through the
//! [`EntropySource`] trait so tests and the discrete-event simulator can
//! be fully deterministic.

use crate::sha256::Sha256;

/// A source of random bytes.
pub trait EntropySource {
    /// Fill `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// A random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

/// The default system entropy source: an in-repo SHA-256 hash-DRBG
/// seeded from the operating system.
///
/// Seeding reads 32 bytes from `/dev/urandom`. If that fails (exotic
/// sandbox, non-Unix platform) the default build falls back to mixing
/// clock, process and address-space entropy — weak, but enough for the
/// simulator and tests this repo runs. Builds with the `rand-rng`
/// feature refuse the fallback and panic instead, for deployments where
/// silently degraded seeding would be unacceptable.
///
/// Output block `i` is `SHA256(V || i)` with the working state `V`
/// ratcheted as `V = SHA256(V || 0xFF)` after every request, so earlier
/// outputs stay unrecoverable if the state later leaks (backtracking
/// resistance in the hash-DRBG style; this is not a certified
/// SP 800-90A implementation).
pub struct SystemRng {
    v: [u8; 32],
    counter: u64,
}

impl SystemRng {
    /// Create a new OS-seeded RNG handle.
    pub fn new() -> Self {
        let seed = match os_entropy() {
            Some(seed) => seed,
            #[cfg(feature = "rand-rng")]
            None => panic!("rand-rng: OS entropy (/dev/urandom) unavailable"),
            #[cfg(not(feature = "rand-rng"))]
            None => fallback_entropy(),
        };
        SystemRng {
            v: seed,
            counter: 0,
        }
    }

    fn next_block(&mut self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.v);
        h.update(&self.counter.to_le_bytes());
        self.counter += 1;
        h.finalize_fixed()
    }

    /// Ratchet the working state forward (one-way).
    fn reseed_step(&mut self) {
        let mut h = Sha256::new();
        h.update(&self.v);
        h.update(&[0xFF]);
        self.v = h.finalize_fixed();
    }
}

/// 32 bytes from the OS CSPRNG, or `None` if unavailable.
fn os_entropy() -> Option<[u8; 32]> {
    use std::io::Read;
    let mut buf = [0u8; 32];
    let mut f = std::fs::File::open("/dev/urandom").ok()?;
    f.read_exact(&mut buf).ok()?;
    Some(buf)
}

/// Best-effort seed when the OS CSPRNG is unreachable: clock, monotonic
/// timer, pid, thread id and ASLR-randomized addresses hashed together.
/// Unpredictable enough for simulation/test workloads only.
#[cfg(not(feature = "rand-rng"))]
fn fallback_entropy() -> [u8; 32] {
    let mut h = Sha256::new();
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.update(&d.as_nanos().to_le_bytes());
    }
    h.update(&std::process::id().to_le_bytes());
    let tid = format!("{:?}", std::thread::current().id());
    h.update(tid.as_bytes());
    let stack_probe = 0u8;
    h.update(&(&stack_probe as *const u8 as usize).to_le_bytes());
    h.update(&(os_entropy as fn() -> Option<[u8; 32]> as usize).to_le_bytes());
    let t0 = std::time::Instant::now();
    std::thread::yield_now();
    h.update(&t0.elapsed().as_nanos().to_le_bytes());
    h.finalize_fixed()
}

impl Default for SystemRng {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropySource for SystemRng {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(32);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_block());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let block = self.next_block();
            rest.copy_from_slice(&block[..rest.len()]);
        }
        self.reseed_step();
    }
}

/// A deterministic, seedable RNG for tests and simulations
/// (xoshiro256++, seeded through SplitMix64).
///
/// NOT cryptographically secure in the "unpredictable to adversaries"
/// sense — it exists so every test and simulation run is reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    fn next(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl EntropySource for TestRng {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<T: EntropySource + ?Sized> EntropySource for &mut T {
    fn fill(&mut self, buf: &mut [u8]) {
        (**self).fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rng_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn test_rng_seed_sensitivity() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(6);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn test_rng_clone_diverges_independently() {
        let mut a = TestRng::new(9);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = a.next_u64();
        // b is one step behind now.
        let av = a.next_u64();
        let b1 = b.next_u64();
        let b2 = b.next_u64();
        assert_ne!(av, b1);
        assert_eq!(av, b2);
    }

    #[test]
    fn fill_partial_words() {
        let mut r = TestRng::new(1);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        // With overwhelming probability not all zero.
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn system_rng_nonzero() {
        let mut r = SystemRng::new();
        let mut buf = [0u8; 32];
        r.fill(&mut buf);
        assert_ne!(buf, [0u8; 32]);
    }

    #[test]
    fn system_rng_instances_diverge() {
        let mut a = SystemRng::new();
        let mut b = SystemRng::new();
        // Independent OS seeds: 2^-256 collision probability.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn system_rng_stream_not_repeating() {
        let mut r = SystemRng::new();
        let mut a = [0u8; 48];
        let mut b = [0u8; 48];
        r.fill(&mut a);
        r.fill(&mut b);
        // The post-request ratchet must advance the stream.
        assert_ne!(a, b);
    }
}
