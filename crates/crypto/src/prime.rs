//! Probabilistic primality testing and prime generation (for RSA keygen).

use crate::bn::Bn;
use crate::rng::EntropySource;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Miller–Rabin primality test with `rounds` random bases.
///
/// Returns `true` if `n` is probably prime (error probability ≤ 4^-rounds).
pub fn is_probable_prime<R: EntropySource>(n: &Bn, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n.is_even() {
        return n == &Bn::from_u64(2);
    }
    // Trial division.
    for &p in SMALL_PRIMES {
        let pb = Bn::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&Bn::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let two = Bn::from_u64(2);
    let bound = n.sub(&Bn::from_u64(3)); // bases in [2, n-2]
    'witness: for _ in 0..rounds {
        let a = Bn::random_below(rng, &bound).add(&two);
        let mut x = a.mod_exp(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
pub fn gen_prime<R: EntropySource>(bits: usize, rng: &mut R) -> Bn {
    assert!(bits >= 8, "prime too small");
    // Rounds per FIPS 186-4 style guidance, scaled down for small test
    // primes and up for production-size primes.
    let rounds = if bits >= 1024 {
        5
    } else if bits >= 256 {
        10
    } else {
        20
    };
    loop {
        let mut candidate = Bn::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&Bn::one());
        }
        // Also set the second-highest bit so that p*q has exactly 2*bits bits.
        candidate.set_bit(bits - 2);
        if is_probable_prime(&candidate, rounds, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn known_primes() {
        let mut rng = TestRng::new(7);
        for p in [2u64, 3, 5, 7, 11, 101, 257, 65537, 4294967311] {
            assert!(
                is_probable_prime(&Bn::from_u64(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn known_composites() {
        let mut rng = TestRng::new(7);
        // Includes Carmichael numbers 561, 1105, 1729, 294409.
        for c in [
            1u64, 4, 6, 9, 15, 561, 1105, 1729, 294409, 65536, 4294967297,
        ] {
            assert!(
                !is_probable_prime(&Bn::from_u64(c), 20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn mersenne_prime() {
        let mut rng = TestRng::new(1);
        // 2^127 - 1 is prime.
        let m127 = Bn::one().shl(127).sub(&Bn::one());
        assert!(is_probable_prime(&m127, 20, &mut rng));
        // 2^128 - 1 = 3 * 5 * 17 * ... is composite.
        let m128 = Bn::one().shl(128).sub(&Bn::one());
        assert!(!is_probable_prime(&m128, 20, &mut rng));
    }

    #[test]
    fn gen_prime_size_and_primality() {
        let mut rng = TestRng::new(42);
        for bits in [64usize, 128, 256] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }
}
