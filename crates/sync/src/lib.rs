//! # qtls-sync — hermetic synchronization primitives
//!
//! A std-only shim providing the lock API the rest of the workspace was
//! written against (`parking_lot`-style, non-poisoning) plus the cache
//! padding wrapper the QAT ring model needs (`crossbeam`-style). It
//! exists so the default feature set of every crate resolves and builds
//! with **zero external dependencies** — the precondition for running
//! tier-1 verify offline.
//!
//! Semantics relative to `std::sync`:
//!
//! - [`Mutex::lock`], [`RwLock::read`] and [`RwLock::write`] return the
//!   guard directly instead of a `Result`: a panic while holding a lock
//!   does **not** poison it. The protected state in this codebase is
//!   either trivially valid at all times (queues, flags, maps) or
//!   re-validated by the consumer, so poisoning adds failure modes
//!   without adding safety.
//! - [`Condvar::wait`]/[`Condvar::wait_for`] take `&mut MutexGuard` (the
//!   `parking_lot` shape) rather than consuming and returning the guard.
//! - [`CachePadded`] aligns its contents to 64 bytes so the ring's
//!   producer and consumer cursors live on distinct cache lines.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never fails.
///
/// Wraps [`std::sync::Mutex`]; a panic in a critical section releases
/// the lock and later callers simply see the state as the panicking
/// thread left it (non-poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`]/[`Condvar::wait_for`], which
/// need to hand the std guard to the std condvar by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside of wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside of wait")
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail
/// (non-poisoning; see [`Mutex`]).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access, blocking until all guards are released.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`], using the
/// `&mut MutexGuard` waiting style.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and sleep until notified;
    /// the lock is re-acquired before returning. Spurious wakeups are
    /// possible — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside of wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`wait`](Condvar::wait) but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside of wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Pads and aligns `T` to a 64-byte cache line so that two adjacent
/// `CachePadded` fields can never share a line (no false sharing between
/// e.g. a ring's producer and consumer cursors).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap, discarding the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: the next lock() just works.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cond) = &*pair2;
            let mut done = lock.lock();
            *done = true;
            cond.notify_all();
        });
        let (lock, cond) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cond.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cond = Condvar::new();
        let mut g = lock.lock();
        let r = cond.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // The guard must still be usable (lock re-acquired).
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn cache_padded_layout() {
        use std::mem::{align_of, size_of};
        // The padding guarantee the ring relies on: each wrapped cursor
        // starts on its own 64-byte line.
        assert_eq!(align_of::<CachePadded<AtomicUsize>>(), 64);
        assert_eq!(size_of::<CachePadded<AtomicUsize>>(), 64);
        assert_eq!(align_of::<CachePadded<u8>>(), 64);
        assert_eq!(size_of::<CachePadded<u8>>(), 64);
        // Larger-than-a-line payloads round up to a multiple of 64.
        assert_eq!(size_of::<CachePadded<[u8; 65]>>(), 128);
    }

    #[test]
    fn cache_padded_deref() {
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
        assert_eq!(*CachePadded::from(9u8), 9);
    }
}
