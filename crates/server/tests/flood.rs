//! Handshake-flood admission-control integration tests: the retry-token
//! challenge flow end to end, overload prioritization of established
//! connections, the capped accept path, backlog shed accounting, and
//! shutdown socket conservation.

use qtls_core::OffloadProfile;
use qtls_crypto::ecc::NamedCurve;
use qtls_server::admission::{self, AdmissionConfig};
use qtls_server::loadgen::{
    run_flood_connection, run_keepalive_stream, spawn_flood, ClientConfig, FloodOutcome, FloodStats,
};
use qtls_server::{Cluster, ContentStore, VListener, Worker, WorkerConfig, WorkerStats};
use qtls_tls::client::ClientSession;
use qtls_tls::provider::CryptoProvider;
use qtls_tls::server::ServerConfig;
use qtls_tls::suite::CipherSuite;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run an SW-profile worker with `cfg` on its own thread until the body
/// returns; give it a drain window, then hand back the final stats.
fn with_worker<F>(cfg: WorkerConfig, listener: Arc<VListener>, body: F) -> WorkerStats
where
    F: FnOnce(&Arc<VListener>),
{
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let l2 = Arc::clone(&listener);
    let handle = std::thread::spawn(move || {
        let mut worker = Worker::new(l2, None, cfg);
        let mut deadline: Option<Instant> = None;
        worker.run_until(|w| {
            if !stop2.load(Ordering::Relaxed) {
                return false;
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
            w.tc_alive() == 0 || Instant::now() > d
        });
        worker.stats
    });
    body(&listener);
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("worker thread")
}

fn admission_cfg(watermark: u64) -> WorkerConfig {
    let mut cfg = WorkerConfig::new(OffloadProfile::Sw);
    cfg.admission = AdmissionConfig {
        enabled: true,
        watermark,
        ..AdmissionConfig::default()
    };
    cfg
}

#[test]
fn challenge_then_token_retry_admits_the_client() {
    // Watermark 0: the worker is permanently in overload, so every
    // token-less ClientHello is challenged. A client that honors the
    // retry completes its handshake on the second connection.
    let listener = Arc::new(VListener::new());
    let stats = with_worker(admission_cfg(0), Arc::clone(&listener), |l| {
        let outcome = run_flood_connection(
            l,
            &ClientConfig::default(),
            9001,
            0xC11E,
            true,
            Duration::from_secs(30),
        )
        .expect("flood connection");
        assert!(
            matches!(outcome, FloodOutcome::Completed { challenged: true }),
            "expected challenged completion, got {outcome:?}"
        );
    });
    assert_eq!(stats.challenges_sent, 1);
    assert_eq!(stats.tokens_verified, 1);
    assert_eq!(stats.tokens_rejected, 0);
    assert_eq!(stats.handshakes, 1);
    assert!(stats.overload_entered >= 1);
}

#[test]
fn flooder_that_ignores_the_token_never_handshakes() {
    let listener = Arc::new(VListener::new());
    let stats = with_worker(admission_cfg(0), Arc::clone(&listener), |l| {
        for i in 0..3u64 {
            let outcome = run_flood_connection(
                l,
                &ClientConfig::default(),
                9100 + i,
                0xF100D + i,
                false,
                Duration::from_secs(30),
            )
            .expect("flood connection");
            assert!(matches!(outcome, FloodOutcome::Challenged));
        }
    });
    assert_eq!(stats.challenges_sent, 3);
    assert_eq!(stats.handshakes, 0, "no asymmetric work was spent");
    assert_eq!(stats.tokens_verified, 0);
}

#[test]
fn stale_and_foreign_tokens_are_rejected() {
    let tls = ServerConfig::test_default();
    let mut cfg = admission_cfg(0);
    cfg.tls = Arc::clone(&tls);
    let listener = Arc::new(VListener::new());
    let stale = tls
        .ticket_keys
        .mint_retry_token(77, admission::coarse_now_secs().saturating_sub(3600));
    let stats = with_worker(cfg, Arc::clone(&listener), |l| {
        for (addr, token) in [
            (77u64, stale.clone()), // expired
            (78u64, stale.clone()), // bound to a different address
            (77u64, vec![0u8; 24]), // forged
        ] {
            let sock = l.connect_from(addr);
            let mut session = ClientSession::new(
                CryptoProvider::Software,
                CipherSuite::EcdheRsa,
                NamedCurve::P256,
                None,
                9500 + addr,
            );
            session.start().expect("client hello");
            let mut first = admission::token_frame(&token);
            first.extend_from_slice(&session.take_output());
            sock.write(&first).expect("first flight");
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match sock.read_all() {
                    Err(qtls_server::net::SockError::Closed) => break,
                    Ok(bytes) => assert!(
                        bytes.is_empty(),
                        "rejected token must not elicit handshake bytes"
                    ),
                    Err(_) => {}
                }
                assert!(Instant::now() < deadline, "server never closed");
                std::thread::yield_now();
            }
        }
    });
    assert_eq!(stats.tokens_rejected, 3);
    assert_eq!(stats.tokens_verified, 0);
    assert_eq!(stats.handshakes, 0);
}

#[test]
fn accepts_are_capped_per_sweep() {
    let listener = Arc::new(VListener::new());
    let mut cfg = WorkerConfig::new(OffloadProfile::Sw);
    cfg.admission.accepts_per_sweep = 2;
    let mut worker = Worker::new(Arc::clone(&listener), None, cfg);
    // Hold the client ends open so drops don't close the server ends.
    let _clients: Vec<_> = (0..5).map(|_| listener.connect()).collect();
    worker.run_iteration();
    assert_eq!(worker.stats.accepted, 2, "first sweep takes the cap");
    assert_eq!(listener.pending(), 3, "rest stay queued for later sweeps");
    worker.run_iteration();
    worker.run_iteration();
    assert_eq!(worker.stats.accepted, 5, "backlog drains across sweeps");
    assert_eq!(listener.pending(), 0);
}

#[test]
fn backlog_cap_sheds_and_the_worker_reports_it() {
    let listener = Arc::new(VListener::with_capacity(2));
    let mut worker = Worker::new(
        Arc::clone(&listener),
        None,
        WorkerConfig::new(OffloadProfile::Sw),
    );
    let clients: Vec<_> = (0..5).map(|_| listener.connect()).collect();
    assert_eq!(listener.rejected(), 3);
    // Shed clients observe a closed socket, like a dropped SYN.
    for shed in &clients[2..] {
        assert!(matches!(
            shed.read_all(),
            Err(qtls_server::net::SockError::Closed)
        ));
    }
    worker.run_iteration();
    assert_eq!(worker.stats.accepted, 2);
    assert_eq!(worker.stats.accept_sheds, 3, "sheds surface in stats");
}

#[test]
fn overload_prioritizes_established_connections() {
    // Single worker, driven by hand: one established keep-alive
    // connection, then enough pending handshakes to cross the
    // watermark. The established connection's request must be served
    // while a fresh token-less ClientHello gets challenged.
    let listener = Arc::new(VListener::new());
    let mut cfg = admission_cfg(2);
    cfg.content = Arc::new(ContentStore::new());
    let mut worker = Worker::new(Arc::clone(&listener), None, cfg);

    // Establish connection A by hand.
    let sock_a = listener.connect();
    let mut client_a = ClientSession::new(
        CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        9700,
    );
    client_a.start().expect("client hello");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client_a.is_established() {
        let out = client_a.take_output();
        if !out.is_empty() {
            sock_a.write(&out).expect("client flight");
        }
        worker.run_iteration();
        if let Ok(bytes) = sock_a.read_all() {
            client_a.feed(&bytes);
            client_a.process().expect("client TLS state");
        }
        assert!(Instant::now() < deadline);
    }

    // Pending handshakes past the watermark (accepted, never written).
    let _pending: Vec<_> = (0..3).map(|_| listener.connect()).collect();
    worker.run_iteration(); // accepts them
    worker.run_iteration(); // sweeps with inflight >= watermark
    assert!(worker.in_overload(), "watermark crossed");
    assert!(worker.stats.overload_entered >= 1);

    // A fresh token-less ClientHello is challenged, not handshaken.
    let sock_new = listener.connect_from(0xFEED);
    let mut client_new = ClientSession::new(
        CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        9701,
    );
    client_new.start().expect("client hello");
    sock_new
        .write(&client_new.take_output())
        .expect("client flight");
    // The established connection's request rides the same sweeps.
    let req = b"GET /4kb HTTP/1.1\r\nHost: qtls\r\nConnection: keep-alive\r\n\r\n";
    client_a.write_app_data(req).expect("request");
    let out = client_a.take_output();
    sock_a.write(&out).expect("request flight");
    let mut challenge: Vec<u8> = Vec::new();
    let mut response: Vec<u8> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while challenge.len() < 4 || !response.windows(4).any(|w| w == b"\r\n\r\n") {
        worker.run_iteration();
        if let Ok(bytes) = sock_new.read_all() {
            challenge.extend_from_slice(&bytes);
        }
        if let Ok(bytes) = sock_a.read_all() {
            client_a.feed(&bytes);
            client_a.process().expect("client TLS state");
            while let Some(chunk) = client_a.read_app_data() {
                response.extend_from_slice(&chunk);
            }
        }
        assert!(Instant::now() < deadline, "service stalled under overload");
    }
    assert_eq!(challenge[0], admission::FRAME_MAGIC, "got a challenge");
    assert_eq!(challenge[1], admission::FRAME_CHALLENGE);
    assert!(response.starts_with(b"HTTP/1.1 200"), "request served");
    assert_eq!(worker.stats.challenges_sent, 1);
    assert_eq!(worker.stats.handshakes, 1, "only the established conn");
}

#[test]
fn shutdown_accounts_for_every_socket() {
    // Burst-connect against a tiny backlog, then shut down immediately:
    // every socket must be dispatched+accepted, dispatched+drained,
    // shed, or still-undispatched — conservation, no silent drops.
    let directives =
        qtls_server::parse_ssl_engine_conf("worker_processes 2;\nadmission_backlog_cap 4;\n")
            .expect("conf");
    let cluster = Cluster::start(
        &directives,
        ServerConfig::test_default(),
        Arc::new(ContentStore::new()),
    );
    let listener = cluster.listener();
    let _clients: Vec<_> = (0..50).map(|_| listener.connect()).collect();
    let report = cluster.shutdown();
    let dispatched: u64 = report.dispatch.dispatched.iter().sum();
    assert_eq!(
        dispatched + report.dispatch.shed + report.undispatched,
        50,
        "dispatch-side conservation"
    );
    for (i, (stats, _)) in report.workers.iter().enumerate() {
        assert_eq!(
            report.dispatch.dispatched[i] + report.dispatch.stolen_in[i],
            stats.accepted + report.dropped_accepts[i] + report.dispatch.stolen_out[i],
            "worker {i} accept-side conservation (steals included)"
        );
    }
    // Stealing is off by default: the steal ledger must be all-zero.
    assert_eq!(report.dispatch.stolen_in.iter().sum::<u64>(), 0);
    assert_eq!(report.dispatch.stolen_out.iter().sum::<u64>(), 0);
}

#[test]
fn flood_with_admission_keeps_established_streams_alive() {
    // One worker under a spoofing handshake flood: the pre-established
    // keep-alive stream keeps being served, the flood is absorbed by
    // cheap challenges, and overload mode engages.
    let directives = qtls_server::parse_ssl_engine_conf(
        "worker_processes 1;\nadmission_control on;\nadmission_watermark 2;\n",
    )
    .expect("conf");
    let cluster = Cluster::start(
        &directives,
        ServerConfig::test_default(),
        Arc::new(ContentStore::new()),
    );
    let listener = cluster.listener();

    let stream_stop = Arc::new(AtomicBool::new(false));
    let stream = {
        let listener = Arc::clone(&listener);
        let stop = Arc::clone(&stream_stop);
        std::thread::spawn(move || {
            run_keepalive_stream(&listener, "/4kb", 9800, &stop, Duration::from_secs(30))
        })
    };
    // Let the stream establish before the flood starts.
    std::thread::sleep(Duration::from_millis(100));

    let flood_stop = Arc::new(AtomicBool::new(false));
    let flood_stats = Arc::new(FloodStats::default());
    let flooders = spawn_flood(
        Arc::clone(&listener),
        ClientConfig::default(),
        4,
        false, // spoofing flooders never honor the token
        Arc::clone(&flood_stop),
        Arc::clone(&flood_stats),
    );
    std::thread::sleep(Duration::from_millis(500));
    flood_stop.store(true, Ordering::Relaxed);
    for h in flooders {
        h.join().expect("flood client");
    }
    stream_stop.store(true, Ordering::Relaxed);
    let latencies = stream
        .join()
        .expect("stream thread")
        .expect("keepalive stream");

    let report = cluster.shutdown();
    let challenges: u64 = report.workers.iter().map(|(s, _)| s.challenges_sent).sum();
    let overloads: u64 = report.workers.iter().map(|(s, _)| s.overload_entered).sum();
    assert!(
        flood_stats.challenged.load(Ordering::Relaxed) > 0,
        "flood was challenged: {flood_stats:?}"
    );
    assert!(challenges > 0, "workers sent challenges");
    assert!(overloads >= 1, "overload mode engaged");
    assert!(
        latencies.len() >= 5,
        "established stream kept being served under flood, got {} requests",
        latencies.len()
    );
}
