//! End-to-end worker tests: every offload profile terminates real TLS
//! handshakes and serves HTTP over the in-memory network, with genuine
//! crypto both in software and through the QAT device model.

use qtls_core::OffloadProfile;
use qtls_crypto::ecc::NamedCurve;
use qtls_qat::{QatConfig, QatDevice};
use qtls_server::loadgen::{run_connection, ClientConfig};
use qtls_server::{VListener, Worker, WorkerConfig};
use qtls_tls::suite::CipherSuite;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run a worker on its own thread until stopped; return its final stats
/// and kernel-switch count.
fn with_worker<F>(profile: OffloadProfile, body: F) -> (qtls_server::WorkerStats, u64)
where
    F: FnOnce(&Arc<VListener>),
{
    let listener = Arc::new(VListener::new());
    let device = if profile.uses_qat() {
        Some(QatDevice::new(QatConfig::functional_small()))
    } else {
        None
    };
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let l2 = Arc::clone(&listener);
    let handle = std::thread::spawn(move || {
        let mut worker = Worker::new(l2, device.as_ref(), WorkerConfig::new(profile));
        // After the stop signal, drain remaining work (e.g. the final
        // Finished of an abbreviated handshake arrives after the client
        // considers itself done) before exiting.
        let mut deadline: Option<Instant> = None;
        worker.run_until(|w| {
            if !stop2.load(Ordering::Relaxed) {
                return false;
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
            w.tc_alive() == 0 || Instant::now() > d
        });
        let stats = worker.stats;
        let switches = worker.kernel_switches();
        (stats, switches)
    });
    body(&listener);
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("worker thread")
}

fn handshake_and_get(listener: &Arc<VListener>, cfg: &ClientConfig, seed: u64) {
    let (_, _, responses, _, _) =
        run_connection(listener, cfg, seed, None, Duration::from_secs(60)).expect("connection");
    if cfg.request_path.is_some() {
        assert_eq!(responses, cfg.requests_per_conn as u64);
    }
}

fn get_cfg(path: &str) -> ClientConfig {
    ClientConfig {
        request_path: Some(path.to_string()),
        ..ClientConfig::default()
    }
}

#[test]
fn sw_profile_serves_requests() {
    let (stats, switches) = with_worker(OffloadProfile::Sw, |l| {
        for i in 0..3 {
            handshake_and_get(l, &get_cfg("/"), 1000 + i);
        }
    });
    assert_eq!(stats.handshakes, 3);
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.errors, 0);
    assert_eq!(switches, 0, "SW has no async notification");
}

#[test]
fn qat_s_profile_serves_requests() {
    let (stats, _) = with_worker(OffloadProfile::QatS, |l| {
        handshake_and_get(l, &get_cfg("/4kb"), 2000);
    });
    assert_eq!(stats.handshakes, 1);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.async_jobs, 0, "straight offload never pauses");
}

#[test]
fn qat_a_profile_uses_fd_notification() {
    let (stats, switches) = with_worker(OffloadProfile::QatA, |l| {
        handshake_and_get(l, &get_cfg("/"), 3000);
    });
    assert_eq!(stats.handshakes, 1);
    assert_eq!(stats.errors, 0);
    assert!(stats.async_jobs > 0, "async profile must pause jobs");
    assert!(
        switches > 0,
        "FD-based notification must cross the (simulated) kernel"
    );
}

#[test]
fn qat_ah_profile_heuristic_polling() {
    let (stats, _) = with_worker(OffloadProfile::QatAH, |l| {
        handshake_and_get(l, &get_cfg("/"), 4000);
    });
    assert_eq!(stats.handshakes, 1);
    assert_eq!(stats.errors, 0);
    assert!(stats.async_jobs > 0);
}

#[test]
fn qtls_profile_kernel_bypass() {
    let (stats, switches) = with_worker(OffloadProfile::Qtls, |l| {
        for i in 0..3 {
            handshake_and_get(l, &get_cfg("/16kb"), 5000 + i);
        }
    });
    assert_eq!(stats.handshakes, 3);
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.errors, 0);
    assert!(stats.async_jobs > 0);
    assert!(stats.resumptions > 0, "jobs must be resumed via the queue");
    assert_eq!(
        switches, 0,
        "kernel-bypass notification must not cross the kernel"
    );
}

#[test]
fn qtls_concurrent_clients() {
    // Multiple concurrent connections multiplexed in ONE worker thread —
    // the event-driven architecture under the async framework.
    let (stats, _) = with_worker(OffloadProfile::Qtls, |l| {
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let l = Arc::clone(l);
            handles.push(std::thread::spawn(move || {
                handshake_and_get(&l, &get_cfg("/"), 6000 + i);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(stats.handshakes, 8);
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.errors, 0);
}

#[test]
fn tls_rsa_and_ecdsa_suites_through_qtls() {
    let (stats, _) = with_worker(OffloadProfile::Qtls, |l| {
        let mut cfg = get_cfg("/");
        cfg.suite = CipherSuite::TlsRsa;
        handshake_and_get(l, &cfg, 7000);
        cfg.suite = CipherSuite::EcdheEcdsa;
        cfg.curve = NamedCurve::P256;
        handshake_and_get(l, &cfg, 7001);
    });
    assert_eq!(stats.handshakes, 2);
    assert_eq!(stats.errors, 0);
}

#[test]
fn session_resumption_through_worker() {
    let (stats, _) = with_worker(OffloadProfile::Qtls, |l| {
        let cfg = ClientConfig {
            resumes_per_full: 9,
            ..ClientConfig::default()
        };
        // One closed-loop client doing 10 connections: 1 full + 9 abbreviated.
        let mut resume = None;
        for i in 0..10u64 {
            let (new_resume, _resumed, _, _, _) =
                run_connection(l, &cfg, 8000 + i, resume.take(), Duration::from_secs(60))
                    .expect("connection");
            resume = new_resume;
        }
    });
    assert_eq!(stats.handshakes, 10);
    assert_eq!(
        stats.resumed, 9,
        "first handshake full, the rest abbreviated"
    );
}

#[test]
fn keepalive_multiple_requests_one_connection() {
    let (stats, _) = with_worker(OffloadProfile::Sw, |l| {
        let cfg = ClientConfig {
            request_path: Some("/4kb".into()),
            requests_per_conn: 5,
            ..ClientConfig::default()
        };
        handshake_and_get(l, &cfg, 9000);
    });
    assert_eq!(stats.handshakes, 1);
    assert_eq!(stats.requests, 5);
}

#[test]
fn large_transfer_fragments() {
    // 1024 KB object: 64 records of 16 KB (Fig. 10's largest size).
    let (stats, _) = with_worker(OffloadProfile::Qtls, |l| {
        let t0 = Instant::now();
        handshake_and_get(l, &get_cfg("/1024kb"), 10_000);
        assert!(t0.elapsed() < Duration::from_secs(60));
    });
    assert_eq!(stats.requests, 1);
    assert!(stats.bytes_sent >= 1024 * 1024);
    assert_eq!(stats.errors, 0);
}

#[test]
fn kernel_switch_ablation_fd_vs_bypass() {
    // The §4.4 ablation: FD notification costs kernel crossings per
    // async event; the kernel-bypass queue costs none.
    let n = 4;
    let (stats_fd, switches_fd) = with_worker(OffloadProfile::QatAH, |l| {
        for i in 0..n {
            handshake_and_get(l, &ClientConfig::default(), 11_000 + i);
        }
    });
    let (stats_kb, switches_kb) = with_worker(OffloadProfile::Qtls, |l| {
        for i in 0..n {
            handshake_and_get(l, &ClientConfig::default(), 12_000 + i);
        }
    });
    assert_eq!(stats_fd.handshakes, n);
    assert_eq!(stats_kb.handshakes, n);
    assert!(switches_fd > 0);
    assert_eq!(switches_kb, 0);
}

#[test]
fn tls13_through_qtls_worker() {
    // The worker terminates TLS 1.3 as well (Fig. 8's protocol), with
    // the HKDF schedule computed on the CPU and the asymmetric ops
    // offloaded.
    use qtls_server::loadgen::run_connection_tls13;
    use qtls_tls::suite::Version;

    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let l2 = Arc::clone(&listener);
    let handle = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
        cfg.version = Version::Tls13;
        let mut worker = Worker::new(l2, Some(&device), cfg);
        let mut deadline: Option<Instant> = None;
        worker.run_until(|w| {
            if !stop2.load(Ordering::Relaxed) {
                return false;
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
            w.tc_alive() == 0 || Instant::now() > d
        });
        (
            worker.stats,
            device.fw_counters().asym.load(Ordering::Relaxed),
        )
    });
    for i in 0..2u64 {
        let cfg = ClientConfig {
            request_path: Some("/4kb".into()),
            ..ClientConfig::default()
        };
        let (_, resumed, responses, bytes, _) =
            run_connection_tls13(&listener, &cfg, 60_000 + i, None, Duration::from_secs(60))
                .expect("tls13 connection");
        assert!(!resumed, "no PSK offered");
        assert_eq!(responses, 1);
        assert_eq!(bytes, 4096);
    }
    stop.store(true, Ordering::Relaxed);
    let (stats, asym_ops) = handle.join().unwrap();
    assert_eq!(stats.handshakes, 2);
    assert_eq!(stats.errors, 0);
    // 2 handshakes x (keygen + ecdh + RSA sign) through the accelerator.
    assert_eq!(asym_ops, 6);
}

/// Drive one keepalive connection to established by hand, interleaving
/// client flights with worker iterations on the calling thread.
fn hand_establish(
    worker: &mut Worker,
    listener: &Arc<VListener>,
    seed: u64,
) -> (qtls_server::VSocket, qtls_tls::client::ClientSession) {
    let sock = listener.connect();
    let mut client = qtls_tls::client::ClientSession::new(
        qtls_tls::provider::CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        seed,
    );
    client.start().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_established() {
        let out = client.take_output();
        if !out.is_empty() {
            sock.write(&out).unwrap();
        }
        worker.run_iteration();
        if let Ok(bytes) = sock.read_all() {
            client.feed(&bytes);
            client.process().unwrap();
        }
        assert!(Instant::now() < deadline);
    }
    (sock, client)
}

#[test]
fn stub_status_formats_every_field() {
    // Exact zero-state rendering: every counter line the heuristic
    // scheme scrapes must be present even before the first accept.
    let listener = Arc::new(VListener::new());
    let worker = Worker::new(listener, None, WorkerConfig::new(OffloadProfile::Sw));
    assert_eq!(
        worker.stub_status(),
        "Active connections: 0\n\
         server accepts handled requests\n 0 0 0\n\
         TLS: alive 0 idle 0 active 0 async-jobs 0 resumptions 0\n\
         bytes: sent 0 received 0 handoffs 0\n\
         submit: flushes 0 flushed 0 max-depth 0 deferred 0 \
         holds 0 forced 0 bypassed 0 ewma-depth 0.000\n\
         admission: accepted 0 challenges 0 verified 0 rejected 0 \
         sheds 0 overloads 0\n\
         sched: load 0 steals 0 policy 0\n"
    );
}

#[test]
fn tc_accounting_under_keepalive_requests() {
    let listener = Arc::new(VListener::new());
    let mut worker = Worker::new(
        Arc::clone(&listener),
        None,
        WorkerConfig::new(OffloadProfile::Sw),
    );
    let (_sock_a, _client_a) = hand_establish(&mut worker, &listener, 501);
    let (sock_b, mut client_b) = hand_establish(&mut worker, &listener, 502);
    for _ in 0..100 {
        worker.run_iteration();
    }
    assert_eq!(worker.tc_alive(), 2);
    assert_eq!(worker.tc_idle(), 2, "both established, nothing pending");
    assert_eq!(worker.tc_active(), 0);
    let page = worker.stub_status();
    assert!(page.contains("Active connections: 2"), "{page}");
    assert!(
        page.contains("server accepts handled requests\n 2 2 0\n"),
        "{page}"
    );
    assert!(page.contains("alive 2 idle 2 active 0"), "{page}");

    // A request lands on B but has not been read yet: B turns active
    // while A stays idle — TC_active = TC_alive - TC_idle (§4.3).
    client_b
        .write_app_data(b"GET / HTTP/1.1\r\nHost: qtls\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    sock_b.write(&client_b.take_output()).unwrap();
    assert_eq!(worker.tc_alive(), 2);
    assert_eq!(worker.tc_active(), 1, "unread request data counts active");
    assert_eq!(worker.tc_idle(), 1);
    assert!(worker.stub_status().contains("alive 2 idle 1 active 1"));

    // Serve it; keepalive returns the connection to idle and bumps the
    // handled-requests column.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = Vec::new();
    while !got.windows(4).any(|w| w == b"\r\n\r\n") {
        worker.run_iteration();
        if let Ok(bytes) = sock_b.read_all() {
            client_b.feed(&bytes);
            client_b.process().unwrap();
            while let Some(chunk) = client_b.read_app_data() {
                got.extend_from_slice(&chunk);
            }
        }
        assert!(Instant::now() < deadline);
    }
    for _ in 0..50 {
        worker.run_iteration();
    }
    assert_eq!(worker.stats.requests, 1);
    assert_eq!(worker.tc_alive(), 2, "keepalive: connection survives");
    assert_eq!(worker.tc_idle(), 2);
    let page = worker.stub_status();
    assert!(
        page.contains("server accepts handled requests\n 2 2 1\n"),
        "{page}"
    );
}

#[test]
fn qtls_stub_status_reports_batched_submissions() {
    // Async profiles stage submissions on the per-worker SubmitQueue and
    // publish them at the sweep boundary; the stub page exposes the
    // flush/batch-depth accounting.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let (_sock, _client) = hand_establish(&mut worker, &listener, 503);
    for _ in 0..100 {
        worker.run_iteration();
    }
    assert!(worker.stats.async_jobs > 0);
    assert!(worker.stats.flushes > 0, "handshake ops must flush");
    assert!(worker.stats.flushed_requests >= worker.stats.flushes);
    assert!(worker.stats.max_flush_depth >= 1);
    assert_eq!(worker.stats.deferred_submits, 0, "ring never filled");
    let page = worker.stub_status();
    assert!(
        page.contains(&format!(
            "submit: flushes {} flushed {} max-depth {} deferred 0",
            worker.stats.flushes, worker.stats.flushed_requests, worker.stats.max_flush_depth
        )),
        "{page}"
    );
    // All submit counters must agree with the queue's own accounting —
    // they are now copied from one SubmitStats snapshot, not folded from
    // per-sweep reports (which lost deferrals on otherwise-empty sweeps).
    let snap = worker
        .engine()
        .expect("qtls has an engine")
        .submit_queue()
        .expect("async profile attaches a queue")
        .stats()
        .snapshot();
    assert_eq!(worker.stats.flushes, snap.flushes);
    assert_eq!(worker.stats.flushed_requests, snap.flushed_requests);
    assert_eq!(worker.stats.max_flush_depth, snap.max_depth);
    assert_eq!(worker.stats.deferred_submits, snap.deferred);
    assert_eq!(worker.stats.submit_holds, snap.holds);
    assert_eq!(worker.stats.forced_flushes, snap.forced_flushes);
    assert_eq!(worker.stats.bypassed_submits, snap.bypasses);
    assert_eq!(worker.stats.ewma_flush_depth_milli, snap.ewma_depth_milli);
}

/// A raw crypto request whose callback records what happened to it.
fn counting_request(
    cookie: u64,
    cancelled: &Arc<std::sync::atomic::AtomicU64>,
) -> qtls_qat::CryptoRequest {
    use qtls_crypto::CryptoError;
    let cancelled = Arc::clone(cancelled);
    qtls_qat::CryptoRequest {
        trace: Default::default(),
        cookie,
        op: qtls_qat::CryptoOp::Prf {
            secret: b"secret".to_vec(),
            label: b"label".to_vec(),
            seed: b"seed".to_vec(),
            out_len: 8,
        },
        callback: Box::new(move |result| {
            if matches!(result, Err(CryptoError::Cancelled)) {
                cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }),
    }
}

#[test]
fn worker_stats_track_deferred_submits_from_ring_full_sweeps() {
    // Regression (stub_status undercounting): stage more requests than
    // the ring can take in one sweep. The flush publishes ring-capacity
    // requests and defers the rest; the worker's stub counters must
    // match the queue exactly — in particular flushes against a full
    // ring (report.submitted == 0) must still be counted, and deferred
    // must be visible even on sweeps whose report is otherwise empty.
    use std::sync::atomic::AtomicU64;
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 1,
        engines_per_endpoint: 0, // nothing completes; counters only
        ring_capacity: 2,
        ..QatConfig::functional_small()
    });
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let queue = worker
        .engine()
        .expect("engine")
        .submit_queue()
        .expect("queue");
    let cancelled = Arc::new(AtomicU64::new(0));
    for i in 0..5 {
        queue.enqueue(counting_request(i, &cancelled));
    }
    // Staged depth 5 >= adaptive target? No (target 16) — but a full
    // ring forces deferral regardless once the flush happens; run enough
    // sweeps to pass any hold bound.
    for _ in 0..10 {
        worker.run_iteration();
    }
    let snap = queue.stats().snapshot();
    assert!(snap.deferred > 0, "ring of 2 must defer from a batch of 5");
    assert_eq!(worker.stats.deferred_submits, snap.deferred);
    assert_eq!(worker.stats.flushes, snap.flushes);
    assert_eq!(worker.stats.flushed_requests, snap.flushed_requests);
    assert_eq!(worker.stats.max_flush_depth, snap.max_depth);
    assert_eq!(worker.stats.max_flush_depth, 5, "deepest staged batch");
    assert!(
        snap.flushes >= 2,
        "full-ring flushes that published nothing must still count: {snap:?}"
    );
    let page = worker.stub_status();
    assert!(
        page.contains(&format!("deferred {}", snap.deferred)),
        "{page}"
    );
}

#[test]
fn worker_shutdown_drains_staged_submissions() {
    // Regression (silent drop): requests staged but not yet flushed when
    // the worker goes away must be failed with a definite error, not
    // leaked. Ring capacity 2 (no engines): shutdown flushes 2 into the
    // ring and cancels the other 3.
    use std::sync::atomic::AtomicU64;
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 1,
        engines_per_endpoint: 0,
        ring_capacity: 2,
        ..QatConfig::functional_small()
    });
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let queue = worker
        .engine()
        .expect("engine")
        .submit_queue()
        .expect("queue");
    let cancelled = Arc::new(AtomicU64::new(0));
    for i in 0..5 {
        queue.enqueue(counting_request(i, &cancelled));
    }
    worker.shutdown();
    assert!(queue.is_empty(), "shutdown must leave nothing staged");
    assert_eq!(cancelled.load(Ordering::Relaxed), 3);
    assert_eq!(worker.stats.cancelled_submits, 3);
    // Dropping the worker re-drains; the second drain is a no-op.
    drop(worker);
    assert_eq!(cancelled.load(Ordering::Relaxed), 3);
}

#[test]
fn stub_status_per_shard_totals_match_aggregate() {
    // The shard section invariant: the `shards:` aggregate line must
    // equal the column-wise totals of the per-shard rows (and the
    // worker's folded stats), whatever traffic ran.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 2,
        ..QatConfig::functional_small()
    });
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let engine = Arc::clone(worker.engine().expect("engine"));
    assert_eq!(engine.shard_count(), 2, "auto-shards: one per endpoint");
    let (_sock, _client) = hand_establish(&mut worker, &listener, 504);
    for _ in 0..50 {
        worker.run_iteration();
    }
    let page = worker.stub_status();
    // Parse "shards: count C inflight I holds H forced F" and each
    // "shard i: inflight x ewma-depth e holds h forced f" row.
    let mut agg: Option<(u64, u64, u64, u64)> = None;
    let mut row_inflight = 0u64;
    let mut row_holds = 0u64;
    let mut row_forced = 0u64;
    let mut rows = 0usize;
    for line in page.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if line.starts_with("shards: ") {
            agg = Some((
                f[2].parse().unwrap(),
                f[4].parse().unwrap(),
                f[6].parse().unwrap(),
                f[8].parse().unwrap(),
            ));
        } else if line.starts_with("shard ") {
            rows += 1;
            row_inflight += f[3].parse::<u64>().unwrap();
            row_holds += f[7].parse::<u64>().unwrap();
            row_forced += f[9].parse::<u64>().unwrap();
        }
    }
    let (count, inflight, holds, forced) = agg.expect("aggregate shard line present: {page}");
    assert_eq!(count, 2, "{page}");
    assert_eq!(rows, 2, "{page}");
    assert_eq!(inflight, row_inflight, "{page}");
    assert_eq!(holds, row_holds, "{page}");
    assert_eq!(forced, row_forced, "{page}");
    // The folded worker stats agree with the aggregate line.
    assert_eq!(worker.stats.submit_holds, holds);
    assert_eq!(worker.stats.forced_flushes, forced);
    assert_eq!(engine.inflight().total(), inflight);
    // The scheduling line's load gauge agrees with the worker's live
    // gauge (same formula the cluster dispatcher routes on).
    let sched: Vec<&str> = page
        .lines()
        .find(|l| l.starts_with("sched: "))
        .expect("sched line present")
        .split_whitespace()
        .collect();
    assert_eq!(sched[2].parse::<u64>().unwrap(), worker.load_gauge());
}

#[test]
fn multi_shard_shutdown_drains_every_shard() {
    // The PR-3 drain regression extended to N queues: shutdown must
    // flush what each shard's ring accepts and cancel the rest on every
    // shard — not just shard 0.
    use std::sync::atomic::AtomicU64;
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 0,
        ring_capacity: 2,
        ..QatConfig::functional_small()
    });
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let engine = Arc::clone(worker.engine().expect("engine"));
    assert_eq!(engine.shard_count(), 2);
    let cancelled = Arc::new(AtomicU64::new(0));
    for i in 0..engine.shard_count() {
        let queue = engine.shard_submit_queue(i).expect("per-shard queue");
        for j in 0..5 {
            queue.enqueue(counting_request((i * 10 + j) as u64, &cancelled));
        }
    }
    worker.shutdown();
    // Each ring of 2 took 2; each queue cancelled its other 3.
    assert_eq!(cancelled.load(Ordering::Relaxed), 6);
    assert_eq!(worker.stats.cancelled_submits, 6);
    for i in 0..engine.shard_count() {
        assert!(engine.shard_submit_queue(i).unwrap().is_empty());
        assert_eq!(engine.shard_instance(i).queued_requests(), 2);
    }
    // Dropping the worker re-drains; the second drain is a no-op.
    drop(worker);
    assert_eq!(cancelled.load(Ordering::Relaxed), 6);
}

/// Send one keepalive HTTPS GET over an established hand-driven
/// connection and return (status, body).
fn https_get(
    worker: &mut Worker,
    sock: &qtls_server::VSocket,
    client: &mut qtls_tls::client::ClientSession,
    path: &str,
) -> (u16, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: keep-alive\r\n\r\n");
    client.write_app_data(req.as_bytes()).unwrap();
    sock.write(&client.take_output()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got: Vec<u8> = Vec::new();
    loop {
        worker.run_iteration();
        if let Ok(bytes) = sock.read_all() {
            client.feed(&bytes);
            client.process().unwrap();
            while let Some(chunk) = client.read_app_data() {
                got.extend_from_slice(&chunk);
            }
        }
        if let Some(hdr_end) = got.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&got[..hdr_end]).to_string();
            let len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            if got.len() >= hdr_end + 4 + len {
                let status = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse::<u16>().ok())
                    .expect("status line");
                let body = String::from_utf8(got[hdr_end + 4..hdr_end + 4 + len].to_vec()).unwrap();
                return (status, body);
            }
        }
        assert!(Instant::now() < deadline, "no response for {path}");
    }
}

#[test]
fn stub_status_kv_is_a_superset_of_the_human_page() {
    // Invariant: every numeric field of the human stub_status page has a
    // kv key carrying the same value (the kv page may add more), on a
    // sharded worker with tracing on so the shard section and the
    // latency-attribution table are both exercised.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 2,
        ..QatConfig::functional_small()
    });
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    cfg.metrics.trace_sample_rate = 1;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    // One closed connection so at least one span tree has been published
    // into the attribution table, one still alive for the gauges.
    let (closed_sock, _closed_client) = hand_establish(&mut worker, &listener, 600);
    closed_sock.close();
    for _ in 0..50 {
        worker.run_iteration();
    }
    let (_sock, _client) = hand_establish(&mut worker, &listener, 601);
    for _ in 0..50 {
        worker.run_iteration();
    }
    // Through the plane, not worker.stub_status(): the attribution table
    // is appended by the endpoint, which is what scrapers see.
    let plane = Arc::clone(worker.metrics_plane());
    let (status, _, human) = plane.serve("/stub_status", "").expect("stub page");
    assert_eq!(status, 200);
    let (status, _, kv_page) = plane.serve("/stub_status", "format=kv").expect("kv page");
    assert_eq!(status, 200);
    let kv: std::collections::HashMap<String, u64> = kv_page
        .lines()
        .map(|l| {
            let (k, v) = l.split_once(' ').expect("key value line");
            (k.to_string(), v.parse::<u64>().expect("numeric kv value"))
        })
        .collect();
    assert_eq!(kv.len(), kv_page.lines().count(), "kv keys must be unique");

    let mut pairs: Vec<(String, u64)> = Vec::new();
    let mut ewma_decimals: Vec<(String, String)> = Vec::new();
    for line in human.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if line.starts_with("Active connections:") {
            pairs.push(("active_connections".into(), f[2].parse().unwrap()));
        } else if f.len() == 3 && f.iter().all(|t| t.parse::<u64>().is_ok()) {
            // The accepts/handled/requests row under the header line.
            pairs.push(("accepts".into(), f[0].parse().unwrap()));
            pairs.push(("handled".into(), f[1].parse().unwrap()));
            pairs.push(("requests".into(), f[2].parse().unwrap()));
        } else if line.starts_with("TLS:") {
            for (key, idx) in [
                ("tls_alive", 2),
                ("tls_idle", 4),
                ("tls_active", 6),
                ("async_jobs", 8),
                ("resumptions", 10),
            ] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
        } else if line.starts_with("bytes:") {
            for (key, idx) in [
                ("bytes_sent", 2),
                ("bytes_received", 4),
                ("record_handoffs", 6),
            ] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
        } else if line.starts_with("submit:") {
            for (key, idx) in [
                ("submit_flushes", 2),
                ("submit_flushed", 4),
                ("submit_max_depth", 6),
                ("submit_deferred", 8),
                ("submit_holds", 10),
                ("submit_forced", 12),
                ("submit_bypassed", 14),
            ] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
            ewma_decimals.push(("submit_ewma_depth_milli".into(), f[16].to_string()));
        } else if line.starts_with("sched:") {
            for (key, idx) in [("sched_load", 2), ("sched_steals", 4), ("sched_policy", 6)] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
        } else if line.starts_with("shards:") {
            for (key, idx) in [
                ("shards_count", 2),
                ("shards_inflight", 4),
                ("shards_holds", 6),
                ("shards_forced", 8),
            ] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
        } else if line.starts_with("shard ") {
            let i = f[1].trim_end_matches(':');
            pairs.push((format!("shard{i}_inflight"), f[3].parse().unwrap()));
            pairs.push((format!("shard{i}_holds"), f[7].parse().unwrap()));
            pairs.push((format!("shard{i}_forced"), f[9].parse().unwrap()));
            ewma_decimals.push((format!("shard{i}_ewma_depth_milli"), f[5].to_string()));
        } else if line.starts_with("trace:") {
            for (key, idx) in [
                ("trace_sample_rate", 2),
                ("trace_sampled", 4),
                ("trace_spans", 6),
                ("trace_dropped", 8),
                ("trace_wall_us", 10),
                ("trace_covered_us", 12),
            ] {
                pairs.push((key.into(), f[idx].parse().unwrap()));
            }
        } else if line.starts_with("trace stage ") {
            let name = f[2].trim_end_matches(':');
            pairs.push((format!("trace_stage_{name}_count"), f[4].parse().unwrap()));
            pairs.push((format!("trace_stage_{name}_mean_us"), f[6].parse().unwrap()));
            pairs.push((format!("trace_stage_{name}_p99_us"), f[8].parse().unwrap()));
        }
    }
    assert!(
        pairs.iter().any(|(k, v)| k == "trace_sampled" && *v > 0),
        "tracing-on page must carry a populated attribution table: {human}"
    );
    assert!(
        pairs
            .iter()
            .any(|(k, _)| k == "trace_stage_handshake_count"),
        "attribution table must list every stage: {human}"
    );
    assert!(
        pairs.iter().any(|(k, _)| k == "shards_count"),
        "sharded page must carry the shard section: {human}"
    );
    assert!(
        pairs.iter().any(|(k, _)| k == "sched_load"),
        "page must carry the scheduling line: {human}"
    );
    for (key, value) in pairs {
        assert_eq!(
            kv.get(&key).copied(),
            Some(value),
            "kv missing or mismatching {key}\nhuman:\n{human}\nkv:\n{kv_page}"
        );
    }
    // EWMA fields: the human page prints milli-requests as a decimal.
    for (key, decimal) in ewma_decimals {
        let milli = kv.get(&key).copied().expect("ewma kv key");
        assert_eq!(format!("{}.{:03}", milli / 1000, milli % 1000), decimal);
    }
}

/// The Prometheus family responsible for a `stub_status?format=kv` key.
/// Panics on an unmapped key — adding a kv counter without a registered
/// family is exactly the regression this audit exists to catch.
fn prom_family_for_kv_key(key: &str) -> &'static str {
    if let Some(rest) = key.strip_prefix("shard") {
        if rest.starts_with(|c: char| c.is_ascii_digit()) {
            return if rest.ends_with("_inflight") {
                "qtls_shard_inflight"
            } else if rest.ends_with("_ewma_depth_milli") {
                "qtls_submit_ewma_depth_milli"
            } else if rest.ends_with("_holds") {
                "qtls_submit_holds_total"
            } else if rest.ends_with("_forced") {
                "qtls_submit_forced_flushes_total"
            } else {
                panic!("per-shard kv key {key} has no mapped Prometheus family")
            };
        }
    }
    if key.starts_with("trace_stage_") {
        return "qtls_trace_stage_us";
    }
    match key {
        "active_connections" | "tls_alive" => "qtls_worker_connections_alive",
        "tls_idle" => "qtls_worker_connections_idle",
        "tls_active" => "qtls_worker_connections_active",
        "accepts" | "admission_accepted" => "qtls_worker_accepts_total",
        "handled" | "handshakes" => "qtls_worker_handshakes_total",
        "requests" => "qtls_worker_requests_total",
        "async_jobs" => "qtls_worker_async_jobs_total",
        "resumptions" => "qtls_worker_resumptions_total",
        "bytes_sent" => "qtls_worker_bytes_sent_total",
        "bytes_received" => "qtls_worker_bytes_received_total",
        "record_handoffs" => "qtls_worker_record_handoffs_total",
        "submit_flushes" => "qtls_submit_flushes_total",
        "submit_flushed" => "qtls_submit_flushed_requests_total",
        "submit_max_depth" => "qtls_submit_max_depth",
        "submit_deferred" => "qtls_submit_deferred_total",
        "submit_holds" | "shards_holds" => "qtls_submit_holds_total",
        "submit_forced" | "shards_forced" => "qtls_submit_forced_flushes_total",
        "submit_bypassed" => "qtls_submit_bypassed_total",
        "submit_ewma_depth_milli" => "qtls_submit_ewma_depth_milli",
        "admission_challenges" => "qtls_admission_challenges_total",
        "admission_tokens_verified" => "qtls_admission_tokens_verified_total",
        "admission_tokens_rejected" => "qtls_admission_tokens_rejected_total",
        "admission_accept_sheds" => "qtls_admission_accept_sheds_total",
        "admission_overloads" => "qtls_admission_overloads_total",
        "sched_load" => "qtls_worker_load",
        "sched_steals" => "qtls_worker_steals_total",
        "sched_policy" => "qtls_dispatch_policy",
        "resumed_handshakes" => "qtls_worker_resumed_handshakes_total",
        "resume_miss" => "qtls_worker_resume_miss_total",
        "errors" => "qtls_worker_errors_total",
        "closed" => "qtls_worker_closed_total",
        "retries" => "qtls_worker_ring_retries_total",
        "cancelled_submits" => "qtls_worker_cancelled_submits_total",
        "kernel_switches" => "qtls_worker_kernel_switches_total",
        "poll_efficiency" | "poll_timeliness" | "poll_failover" => "qtls_poll_fired_total",
        "poll_wasted" => "qtls_poll_wasted_total",
        "poll_responses" => "qtls_poll_responses_total",
        "poll_shards_swept" => "qtls_poll_shards_swept_total",
        "shards_count" => "qtls_shard_count",
        "shards_inflight" => "qtls_shard_inflight",
        "trace_sample_rate" => "qtls_trace_sample_rate",
        "trace_sampled" => "qtls_trace_sampled_total",
        "trace_spans" => "qtls_trace_spans_total",
        "trace_dropped" => "qtls_trace_dropped_total",
        "trace_wall_us" => "qtls_trace_wall_us_total",
        "trace_covered_us" => "qtls_trace_covered_us_total",
        _ => panic!("kv key {key} has no mapped Prometheus family — register one"),
    }
}

#[test]
fn every_kv_counter_has_a_registered_prometheus_family() {
    // Registry audit: every key the machine-readable stub page exposes
    // maps to a family that is in obs::registry::METRIC_NAMES AND is
    // actually rendered by /metrics on the same worker — stub_status
    // and the Prometheus exposition must not drift apart.
    use qtls_core::obs;
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 2,
        ..QatConfig::functional_small()
    });
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    cfg.metrics.trace_sample_rate = 1;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, _client) = hand_establish(&mut worker, &listener, 611);
    sock.close();
    for _ in 0..50 {
        worker.run_iteration();
    }
    let plane = Arc::clone(worker.metrics_plane());
    let (_, _, kv_page) = plane.serve("/stub_status", "format=kv").expect("kv page");
    let (_, _, metrics_page) = plane.serve("/metrics", "").expect("metrics page");
    let mut checked = 0usize;
    for line in kv_page.lines() {
        let key = line.split(' ').next().expect("kv key");
        let family = prom_family_for_kv_key(key);
        assert!(
            obs::registry::is_registered(family),
            "family {family} (for kv key {key}) not in obs::registry::METRIC_NAMES"
        );
        assert!(
            metrics_page.contains(&format!("# TYPE {family} ")),
            "family {family} (for kv key {key}) not rendered by /metrics"
        );
        checked += 1;
    }
    assert!(checked > 40, "kv page suspiciously small: {kv_page}");
}

#[test]
fn metrics_and_flight_endpoints_serve_in_band() {
    // `qat_metrics on`: the worker serves /metrics (valid Prometheus
    // text, every family registered), the kv stub page and the flight
    // dump over TLS, and all four offload phases accumulate samples.
    use qtls_core::obs;
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 2,
        ..QatConfig::functional_small()
    });
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, mut client) = hand_establish(&mut worker, &listener, 602);
    for _ in 0..50 {
        worker.run_iteration();
    }
    let (status, body) = https_get(&mut worker, &sock, &mut client, "/metrics");
    assert_eq!(status, 200);
    let families = obs::promtext::parse(&body).expect("valid Prometheus text");
    assert!(!families.is_empty());
    for family in &families {
        assert!(
            obs::registry::is_registered(family),
            "family {family} not in obs::registry::METRIC_NAMES"
        );
    }
    assert!(body.contains("qtls_metrics_enabled 1"), "{body}");
    for phase in [
        "pre_processing",
        "retrieval",
        "notification",
        "post_processing",
    ] {
        for shard in ["merged", "0", "1"] {
            let series = format!(
                "qtls_phase_latency_ns{{phase=\"{phase}\",class=\"asym\",shard=\"{shard}\",quantile=\"0.99\"}}"
            );
            assert!(body.contains(&series), "missing {series}\n{body}");
        }
    }
    // The handshake's asym ops recorded real samples in every phase.
    let engine = Arc::clone(worker.engine().expect("engine"));
    for phase in obs::Phase::ALL {
        let snap = engine.obs().merged(phase, qtls_qat::OpClass::Asym);
        assert!(snap.count() > 0, "phase {phase:?} recorded no samples");
        assert!(snap.quantile(0.99) >= snap.quantile(0.5));
    }
    let (status, kv) = https_get(&mut worker, &sock, &mut client, "/stub_status?format=kv");
    assert_eq!(status, 200);
    assert!(kv.lines().any(|l| l.starts_with("active_connections ")));
    let (status, human) = https_get(&mut worker, &sock, &mut client, "/stub_status");
    assert_eq!(status, 200);
    assert!(human.starts_with("Active connections:"), "{human}");
    let (status, flight) = https_get(&mut worker, &sock, &mut client, "/flight");
    assert_eq!(status, 200);
    assert!(flight.starts_with("flight: "), "{flight}");
}

#[test]
fn metrics_endpoints_are_404_when_disabled() {
    // Default `qat_metrics off`: the scrape endpoints answer 404, the
    // stub page still serves, and the engine records nothing.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let (sock, mut client) = hand_establish(&mut worker, &listener, 603);
    let (status, _) = https_get(&mut worker, &sock, &mut client, "/metrics");
    assert_eq!(status, 404);
    let (status, _) = https_get(&mut worker, &sock, &mut client, "/flight");
    assert_eq!(status, 404);
    let (status, page) = https_get(&mut worker, &sock, &mut client, "/stub_status");
    assert_eq!(status, 200);
    assert!(page.starts_with("Active connections:"));
    let engine = worker.engine().expect("engine");
    assert!(!engine.obs().enabled());
    for phase in qtls_core::obs::Phase::ALL {
        let snap = engine.obs().merged(phase, qtls_qat::OpClass::Asym);
        assert_eq!(snap.count(), 0, "disabled plane must record nothing");
    }
}

#[test]
fn data_plane_codec_serves_bulk_objects() {
    // Tentpole: after Finished the worker hands the connection to the
    // batched record codec; a 1 MB object leaves as 64 records sealed in
    // scatter-gather batches — far fewer doorbells than records.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut worker = Worker::new(
        Arc::clone(&listener),
        Some(&device),
        WorkerConfig::new(OffloadProfile::Qtls),
    );
    let (sock, mut client) = hand_establish(&mut worker, &listener, 701);
    for _ in 0..20 {
        worker.run_iteration();
    }
    assert_eq!(worker.stats.record_handoffs, 1, "handoff after Finished");
    let fw = device.fw_counters();
    let ciphers_before = fw.cipher.load(Ordering::Relaxed);
    let doorbells_before = fw.doorbells.load(Ordering::Relaxed);
    let (status, body) = https_get(&mut worker, &sock, &mut client, "/1024kb");
    assert_eq!(status, 200);
    assert_eq!(body.len(), 1024 * 1024);
    let ciphers = fw.cipher.load(Ordering::Relaxed) - ciphers_before;
    let doorbells = fw.doorbells.load(Ordering::Relaxed) - doorbells_before;
    assert!(
        ciphers >= 64,
        "bulk records sealed on the device: {ciphers}"
    );
    assert!(
        doorbells < ciphers / 2,
        "batching must amortize doorbells: {doorbells} vs {ciphers}"
    );
    assert!(worker.stats.bytes_sent >= 1024 * 1024);
    assert!(worker.stats.bytes_received > 0, "request bytes counted");
    let page = worker.stub_status();
    assert!(page.contains("handoffs 1"), "{page}");
    let kv = worker.stub_status_kv();
    assert!(
        kv.lines()
            .any(|l| l.starts_with("bytes_received ") && !l.ends_with(" 0")),
        "{kv}"
    );
}

#[test]
fn record_offload_directive_off_keeps_the_session_path() {
    // `qat_record_offload off`: established connections keep serving
    // through the handshake session's record layer — no codec handoff.
    let listener = Arc::new(VListener::new());
    let mut cfg = WorkerConfig::new(OffloadProfile::Sw);
    cfg.record_offload = false;
    let mut worker = Worker::new(Arc::clone(&listener), None, cfg);
    let (sock, mut client) = hand_establish(&mut worker, &listener, 702);
    let (status, body) = https_get(&mut worker, &sock, &mut client, "/4kb");
    assert_eq!(status, 200);
    assert_eq!(body.len(), 4096);
    assert_eq!(worker.stats.record_handoffs, 0, "no handoff when off");
    assert!(worker.stats.bytes_received > 0);
    assert!(worker.stats.bytes_sent >= 4096);
}

#[test]
fn stub_status_accounting() {
    let listener = Arc::new(VListener::new());
    let mut worker = Worker::new(
        Arc::clone(&listener),
        None,
        WorkerConfig::new(OffloadProfile::Sw),
    );
    assert_eq!(worker.tc_alive(), 0);
    // Drive one keepalive connection to established by hand.
    let sock = listener.connect();
    let mut client = qtls_tls::client::ClientSession::new(
        qtls_tls::provider::CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        77,
    );
    client.start().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_established() {
        let out = client.take_output();
        if !out.is_empty() {
            sock.write(&out).unwrap();
        }
        worker.run_iteration();
        if let Ok(bytes) = sock.read_all() {
            client.feed(&bytes);
            client.process().unwrap();
        }
        assert!(Instant::now() < deadline);
    }
    // Let the worker observe the final client flight.
    for _ in 0..100 {
        worker.run_iteration();
    }
    assert_eq!(worker.tc_alive(), 1, "connection stays alive (keepalive)");
    assert_eq!(worker.tc_idle(), 1, "established + no pending input = idle");
    assert_eq!(worker.tc_active(), 0);
    let page = worker.stub_status();
    assert!(page.contains("Active connections: 1"), "{page}");
    assert!(page.contains("idle 1"), "{page}");
    drop(sock);
    for _ in 0..100 {
        worker.run_iteration();
    }
    assert_eq!(worker.tc_alive(), 0, "closed connection reaped");
}
