//! End-to-end tracing integration tests: a mixed flood/bulk/resume
//! cluster run must export complete, sum-checked span trees through
//! `/trace` (Chrome trace-event JSON), the admission round trip must be
//! visible in the spans, sampling off must cost nothing and store
//! nothing, and the anomaly sweep must run on its wall-clock cadence
//! rather than the old every-256-iterations counter.

use qtls_core::obs::{self, SpanKind};
use qtls_core::OffloadProfile;
use qtls_crypto::ecc::NamedCurve;
use qtls_qat::{QatConfig, QatDevice};
use qtls_server::loadgen::{run_connection, run_flood_connection, ClientConfig, FloodOutcome};
use qtls_server::{Cluster, ContentStore, VListener, Worker, WorkerConfig};
use qtls_tls::server::ServerConfig;
use qtls_tls::suite::CipherSuite;
use std::sync::Arc;
use std::time::{Duration, Instant};

const QTLS_TRACING_CONF: &str = r#"
worker_processes 2;
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;
    }
}
qat_metrics on;
trace_sample_rate 1;
"#;

#[test]
fn mixed_cluster_run_exports_complete_sum_checked_span_trees() {
    // Bulk + resume mix over a 2-worker QTLS cluster at 1-in-1 sampling:
    // every published trace must be a complete tree whose stage
    // durations cover the connection's wall time (within the 5% budget —
    // exact by construction, since idle gaps are attributed explicitly),
    // and /trace must export the lot as valid Chrome trace-event JSON.
    let directives = qtls_server::parse_ssl_engine_conf(QTLS_TRACING_CONF).expect("conf");
    assert_eq!(directives.profile, OffloadProfile::Qtls);
    let cluster = Cluster::start(
        &directives,
        ServerConfig::test_default(),
        Arc::new(ContentStore::new()),
    );
    let listener = cluster.listener();

    // Bulk transfers: keep-alive GETs exercising the batched record
    // data plane (seal on the server, open for the request records).
    let bulk = ClientConfig::bulk("/16kb", 3);
    for i in 0..4u64 {
        run_connection(&listener, &bulk, 7300 + i, None, Duration::from_secs(30))
            .expect("bulk connection");
    }
    // Resumption pairs: a full handshake minting a session, then an
    // abbreviated one reusing it.
    let hs_only = ClientConfig {
        resumes_per_full: 1,
        ..ClientConfig::default()
    };
    let mut resume = None;
    let mut resumed_seen = 0u64;
    for i in 0..4u64 {
        let (out, resumed, _, _, _) = run_connection(
            &listener,
            &hs_only,
            7400 + i,
            resume.take(),
            Duration::from_secs(30),
        )
        .expect("resume connection");
        resume = out;
        resumed_seen += u64::from(resumed);
    }
    assert!(resumed_seen > 0, "the resume mix produced no resumptions");

    // Workers publish a trace when they reap the closed connection —
    // give the event loops a bounded window to catch up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let want = 8usize;
    loop {
        let published: usize = cluster
            .metrics_planes()
            .iter()
            .flatten()
            .map(|p| p.trace_sink().traces().len())
            .sum();
        if published >= want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {published}/{want} traces published in time"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut total_traces = 0usize;
    let mut kinds_seen = std::collections::BTreeSet::new();
    let mut resumed_handshake_spans = 0u64;
    let mut offload_waits = 0u64;
    let mut export_events = 0u64;
    for plane in cluster.metrics_planes().iter().flatten() {
        for trace in plane.trace_sink().traces() {
            total_traces += 1;
            let spans = trace.spans();
            let root = &spans[0];
            assert_eq!(root.kind, SpanKind::Connection, "first span is the root");
            assert!(root.end_ns > root.start_ns, "root span was closed");
            // Sum check: direct children cover the root within 5%.
            let wall = trace.wall_ns();
            let covered = trace.covered_ns();
            let gap = wall.abs_diff(covered);
            assert!(
                gap * 20 <= wall.max(1),
                "stage durations cover only {covered} of {wall} ns (conn {})",
                trace.conn_id()
            );
            for span in spans {
                kinds_seen.insert(span.kind.name());
                assert!(span.end_ns >= span.start_ns, "span closed backwards");
                if span.kind == SpanKind::Handshake && span.a == 1 {
                    resumed_handshake_spans += 1;
                }
                if span.kind == SpanKind::OffloadWait {
                    offload_waits += 1;
                }
                if let Some(parent) = span.parent {
                    let p = &spans[parent as usize];
                    assert!(
                        span.start_ns >= p.start_ns && span.end_ns <= p.end_ns,
                        "child span escapes its parent's interval"
                    );
                }
            }
        }
        // The export surface: valid Chrome trace-event JSON, one X event
        // per span, connections keyed by tid.
        let (status, _, body) = plane.serve("/trace", "").expect("trace endpoint");
        assert_eq!(status, 200, "/trace serves when tracing is on");
        let summary = obs::tracejson::validate_chrome_trace(&body).expect("Chrome trace shape");
        export_events += summary.events as u64;
    }
    assert!(total_traces >= 8, "published {total_traces} traces");
    assert!(export_events > 0, "/trace exported no events");
    for stage in [
        "connection",
        "accept_wait",
        "handshake",
        "serve",
        "record_seal",
        "record_open",
    ] {
        assert!(
            kinds_seen.contains(stage),
            "no {stage} span in any trace; saw {kinds_seen:?}"
        );
    }
    assert!(
        resumed_handshake_spans > 0,
        "no handshake span was annotated as resumed"
    );
    assert!(
        offload_waits > 0,
        "no offload submit->retrieve wait was traced"
    );
    cluster.shutdown();
}

#[test]
fn admission_round_trip_is_visible_in_the_span_trees() {
    // Watermark 0 keeps the lone worker permanently in overload: the
    // first connection is challenged (partial tree, admission a=1), the
    // token retry is admitted (admission a=2) and completes.
    use qtls_server::admission::AdmissionConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    let listener = Arc::new(VListener::new());
    let mut cfg = WorkerConfig::new(OffloadProfile::Sw);
    cfg.admission = AdmissionConfig {
        enabled: true,
        watermark: 0,
        ..AdmissionConfig::default()
    };
    cfg.metrics.enabled = true;
    cfg.metrics.trace_sample_rate = 1;
    let stop = Arc::new(AtomicBool::new(false));
    let (plane_tx, plane_rx) = std::sync::mpsc::channel();
    let handle = {
        let listener = Arc::clone(&listener);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut worker = Worker::new(listener, None, cfg);
            plane_tx
                .send(Arc::clone(worker.metrics_plane()))
                .expect("send plane");
            worker.run_until(|_| stop.load(Ordering::Relaxed));
        })
    };
    let plane = plane_rx.recv().expect("worker plane");
    let outcome = run_flood_connection(
        &listener,
        &ClientConfig::default(),
        7500,
        0xAD417,
        true,
        Duration::from_secs(30),
    )
    .expect("flood connection");
    assert!(matches!(
        outcome,
        FloodOutcome::Completed { challenged: true }
    ));

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (mut challenged_spans, mut token_spans) = (0u64, 0u64);
        for trace in plane.trace_sink().traces() {
            for span in trace.spans() {
                if span.kind == SpanKind::Admission {
                    match span.a {
                        1 => challenged_spans += 1,
                        2 => token_spans += 1,
                        _ => {}
                    }
                }
            }
        }
        if challenged_spans > 0 && token_spans > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "admission spans missing: challenged {challenged_spans} token {token_spans}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("worker thread");
}

#[test]
fn sampling_off_stores_nothing_and_trace_is_404() {
    // trace_sample_rate 0 (the default): serving traffic must leave the
    // sink completely untouched and the export endpoint dark.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, _client) = establish(&mut worker, &listener, 7600);
    sock.close();
    for _ in 0..50 {
        worker.run_iteration();
    }
    let plane = Arc::clone(worker.metrics_plane());
    let sink = plane.trace_sink();
    assert!(!sink.enabled());
    assert_eq!(sink.sampled(), 0);
    assert_eq!(sink.spans_published(), 0);
    assert_eq!(sink.wall_ns_total(), 0);
    assert!(sink.traces().is_empty(), "no span storage at rate 0");
    let (status, _, _) = plane.serve("/trace", "").expect("endpoint routed");
    assert_eq!(status, 404, "/trace is dark when sampling is off");
}

#[test]
fn trace_export_off_hides_the_endpoint_but_keeps_attribution() {
    // trace_export off: sampling still feeds the attribution table, but
    // the Chrome export endpoint answers 404.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    cfg.metrics.trace_sample_rate = 1;
    cfg.metrics.trace_export = false;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, _client) = establish(&mut worker, &listener, 7601);
    sock.close();
    let deadline = Instant::now() + Duration::from_secs(10);
    while worker.metrics_plane().trace_sink().sampled() == 0 {
        worker.run_iteration();
        assert!(Instant::now() < deadline, "trace never published");
    }
    let plane = Arc::clone(worker.metrics_plane());
    let (status, _, _) = plane.serve("/trace", "").expect("endpoint routed");
    assert_eq!(status, 404, "/trace is dark with export off");
    let (_, _, page) = plane.serve("/stub_status", "").expect("stub page");
    assert!(
        page.lines().any(|l| l.starts_with("trace: ")),
        "attribution table still renders: {page}"
    );
}

#[test]
fn anomaly_sweep_runs_on_wall_clock_cadence_not_iteration_count() {
    // Regression for the hard-coded every-256-iterations sweep. With a
    // huge interval, 300 iterations (past the old trigger point) must
    // not freeze; with a 1 ms interval, a handful of iterations after
    // the clock passes must freeze — and attach the slowest sampled
    // connection's span tree as the exemplar.
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig::functional_small());
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    cfg.metrics.anomaly_p99_us = 1; // any real handshake p99 exceeds this
    cfg.metrics.anomaly_interval_ms = 3_600_000;
    cfg.metrics.trace_sample_rate = 1;
    let mut slow = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, _client) = establish(&mut slow, &listener, 7700);
    sock.close();
    for _ in 0..300 {
        slow.run_iteration();
    }
    let recorder_frozen = slow
        .engine()
        .expect("engine")
        .obs()
        .recorder()
        .frozen()
        .is_some();
    assert!(
        !recorder_frozen,
        "sweep fired before its interval elapsed (old 256-iteration cadence?)"
    );

    let listener = Arc::new(VListener::new());
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    cfg.metrics.anomaly_p99_us = 1;
    cfg.metrics.anomaly_interval_ms = 1;
    cfg.metrics.trace_sample_rate = 1;
    let mut fast = Worker::new(Arc::clone(&listener), Some(&device), cfg);
    let (sock, _client) = establish(&mut fast, &listener, 7701);
    sock.close();
    for _ in 0..50 {
        fast.run_iteration();
    }
    std::thread::sleep(Duration::from_millis(5));
    for _ in 0..10 {
        fast.run_iteration();
    }
    let recorder = fast.engine().expect("engine").obs().recorder();
    assert!(
        recorder.frozen().is_some(),
        "wall-clock sweep did not fire after its interval"
    );
    let exemplar = recorder.frozen_trace().expect("exemplar trace attached");
    assert!(
        exemplar
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Handshake),
        "exemplar should be the sampled handshake connection"
    );
}

/// Hand-drive one client handshake against `worker` (single-threaded,
/// no background event loop).
fn establish(
    worker: &mut Worker,
    listener: &Arc<VListener>,
    seed: u64,
) -> (qtls_server::VSocket, qtls_tls::client::ClientSession) {
    let sock = listener.connect();
    let mut client = qtls_tls::client::ClientSession::new(
        qtls_tls::provider::CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        seed,
    );
    client.start().expect("client hello");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_established() {
        let out = client.take_output();
        if !out.is_empty() {
            sock.write(&out).expect("client write");
        }
        worker.run_iteration();
        if let Ok(bytes) = sock.read_all() {
            client.feed(&bytes);
            client.process().expect("client TLS state");
        }
        assert!(Instant::now() < deadline, "handshake stalled");
    }
    (sock, client)
}
