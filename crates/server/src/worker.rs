//! The event-driven HTTPS worker — the Nginx-worker role of the paper,
//! with the QTLS modifications of §4.2:
//!
//! - one thread handles many connections over non-blocking sockets;
//! - TLS processing runs inside fiber-based offload jobs (async
//!   profiles): when a crypto request is submitted the job pauses, the
//!   connection enters the **TLS-ASYNC** state and the loop moves on;
//! - read events that arrive while an async event is expected are saved
//!   and replayed after the async event is processed ("event disorder");
//! - the heuristic polling scheme runs inside the loop, fed by the
//!   engine's inflight counters and the worker's `TC_active` statistic
//!   (`stub_status`-style accounting);
//! - completions arrive through the kernel-bypass async queue (QTLS) or
//!   an eventfd/epoll-style FD path (QAT+A / QAT+AH), whose simulated
//!   kernel crossings are counted.

use crate::admission::{self, AdmissionConfig, FrameParse};
use crate::http::{self, ContentStore, ParseOutcome};
use crate::metrics::{self, MetricsConfig, MetricsPlane, StatusSnapshot};
use crate::net::{SockError, VListener, VSocket};
use crate::sched::SchedShared;
use qtls_core::obs::{self, ConnTrace, SpanKind};
use qtls_core::{
    fiber, AsyncQueue, EngineMode, FdSelector, FlushPolicyConfig, HeuristicConfig, HeuristicPoller,
    NotifyScheme, OffloadEngine, OffloadProfile, PollingScheme, ShardPolicy, StartResult,
    SubmitQueue, TimerPoller, VirtualFd,
};
use qtls_crypto::TestRng;
use qtls_qat::QatDevice;
use qtls_tls::any_session::AnyServerSession;
use qtls_tls::provider::{CryptoProvider, OffloadSelection, OpCounters};
use qtls_tls::record::RecordCodec;
use qtls_tls::server::ServerConfig;
use qtls_tls::suite::Version;
use qtls_tls::TlsError;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Worker configuration.
pub struct WorkerConfig {
    /// Offload profile (the five configurations of §5.1).
    pub profile: OffloadProfile,
    /// TLS server configuration (keys, suites, session cache).
    pub tls: Arc<ServerConfig>,
    /// Served content.
    pub content: Arc<ContentStore>,
    /// Heuristic polling thresholds.
    pub heuristic: HeuristicConfig,
    /// Timer-poller interval override (Fig. 12 sweeps 10 µs vs 1 ms).
    pub timer_interval: Option<Duration>,
    /// Which algorithm classes are offloaded (the `default_algorithm`
    /// directive of the SSL Engine Framework).
    pub selection: OffloadSelection,
    /// Protocol version served (the worker terminates one protocol, as
    /// in the paper's per-experiment Nginx configurations).
    pub version: Version,
    /// Sweep-boundary flush policy for the submit pipeline (the
    /// `qat_submit_flush_*` directive family). Applies per shard.
    pub flush: FlushPolicyConfig,
    /// Number of offload shards (crypto instances) this worker spreads
    /// its submissions over; 0 means one per device endpoint (the
    /// `qat_worker_shards` directive).
    pub shards: usize,
    /// Shard placement policy (the `qat_shard_policy` directive).
    pub shard_policy: ShardPolicy,
    /// Observability plane (the `qat_metrics` directive family).
    pub metrics: MetricsConfig,
    /// Hand established connections off to the batched record codec
    /// (the `qat_record_offload` directive). Off = the handshake
    /// session keeps serving application records one at a time.
    pub record_offload: bool,
    /// Records staged per data-plane batch submission (the
    /// `qat_record_batch_depth` directive).
    pub record_batch: usize,
    /// Handshake-flood admission control (the `admission_*` directive
    /// family): retry-token challenges over the watermark, capped
    /// accepts per sweep, overload prioritization.
    pub admission: AdmissionConfig,
    /// The cluster scheduling plane (load gauges, steal accounting,
    /// drain signal); `None` for a standalone worker.
    pub sched: Option<Arc<SchedShared>>,
    /// This worker's slot in the scheduling plane's gauge array.
    pub worker_index: usize,
    /// Every worker's accept backlog in cluster order — the steal
    /// victims. Empty for a standalone worker.
    pub peers: Vec<Arc<VListener>>,
}

impl WorkerConfig {
    /// Default config for `profile`.
    pub fn new(profile: OffloadProfile) -> Self {
        WorkerConfig {
            profile,
            tls: ServerConfig::test_default(),
            content: Arc::new(ContentStore::new()),
            heuristic: HeuristicConfig::default(),
            timer_interval: None,
            selection: OffloadSelection::default(),
            version: Version::Tls12,
            flush: FlushPolicyConfig::adaptive(),
            shards: 0,
            shard_policy: ShardPolicy::default(),
            metrics: MetricsConfig::default(),
            record_offload: true,
            record_batch: RecordCodec::DEFAULT_BATCH,
            admission: AdmissionConfig::default(),
            sched: None,
            worker_index: 0,
            peers: Vec::new(),
        }
    }

    /// Build a worker config from parsed `ssl_engine` directives.
    pub fn from_directives(d: &crate::config_file::EngineDirectives) -> Self {
        WorkerConfig {
            profile: d.profile,
            tls: ServerConfig::test_default(),
            content: Arc::new(ContentStore::new()),
            heuristic: d.heuristic,
            timer_interval: d.timer_interval,
            selection: d.selection,
            version: Version::Tls12,
            flush: d.flush,
            shards: d.worker_shards,
            shard_policy: d.shard_policy,
            metrics: d.metrics,
            record_offload: d.record_offload,
            record_batch: d.record_batch_depth,
            admission: d.admission,
            sched: None,
            worker_index: 0,
            peers: Vec::new(),
        }
    }
}

/// Worker statistics (a `stub_status` superset).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Completed handshakes.
    pub handshakes: u64,
    /// Of which abbreviated (resumed).
    pub resumed: u64,
    /// Handshakes where the client offered resumption state this worker
    /// could not honour (silent fallback to a full handshake).
    pub resume_miss: u64,
    /// HTTP requests served.
    pub requests: u64,
    /// Application bytes sent.
    pub bytes_sent: u64,
    /// Application bytes received.
    pub bytes_received: u64,
    /// Established connections handed off from the handshake control
    /// plane to the batched record codec.
    pub record_handoffs: u64,
    /// Fiber jobs that paused at least once (offload jobs).
    pub async_jobs: u64,
    /// Job resumptions processed.
    pub resumptions: u64,
    /// Ring-full retry reschedules.
    pub retries: u64,
    /// Connections closed.
    pub closed: u64,
    /// TLS protocol errors.
    pub errors: u64,
    /// Sweep-boundary submit flushes that published at least one request.
    pub flushes: u64,
    /// Crypto requests published through batched flushes.
    pub flushed_requests: u64,
    /// Deepest submit batch published by one flush.
    pub max_flush_depth: u64,
    /// Requests a flush had to defer to the next sweep (ring full).
    pub deferred_submits: u64,
    /// Sweeps where the adaptive policy held a shallow batch back.
    pub submit_holds: u64,
    /// Held batches published because the hold bound expired.
    pub forced_flushes: u64,
    /// Requests that bypassed staging under light load.
    pub bypassed_submits: u64,
    /// EWMA of published flush depth, in milli-requests.
    pub ewma_flush_depth_milli: u64,
    /// Staged requests cancelled at worker shutdown.
    pub cancelled_submits: u64,
    /// Connections accepted off the listener backlog.
    pub accepted: u64,
    /// Admission challenges sent to token-less ClientHellos while over
    /// the watermark.
    pub challenges_sent: u64,
    /// Retry tokens presented and verified (admitted past the gate).
    pub tokens_verified: u64,
    /// Retry tokens rejected (stale, spoofed, or malformed frames).
    pub tokens_rejected: u64,
    /// Connections shed at the listener's full accept backlog.
    pub accept_sheds: u64,
    /// Transitions into overload mode (inflight handshakes crossed the
    /// watermark).
    pub overload_entered: u64,
    /// Sockets this worker stole from a loaded sibling's accept backlog
    /// while its own was dry (`dispatch_steal on`).
    pub steals: u64,
}

/// Submit-pipeline counters folded over every shard's queue: counters
/// sum, the depth high-water mark takes the max, the EWMA takes the
/// mean — at one shard every field is an exact copy of that queue's
/// snapshot, keeping the single-instance `stub_status` fields stable.
#[derive(Default)]
struct FoldedSubmit {
    flushes: u64,
    flushed_requests: u64,
    max_depth: u64,
    deferred: u64,
    holds: u64,
    forced_flushes: u64,
    bypasses: u64,
    ewma_depth_milli: u64,
}

fn folded_submit_stats(engine: &OffloadEngine) -> Option<FoldedSubmit> {
    let mut folded = FoldedSubmit::default();
    let mut queues = 0u64;
    for i in 0..engine.shard_count() {
        if let Some(queue) = engine.shard_submit_queue(i) {
            let snap = queue.stats().snapshot();
            queues += 1;
            folded.flushes += snap.flushes;
            folded.flushed_requests += snap.flushed_requests;
            folded.max_depth = folded.max_depth.max(snap.max_depth);
            folded.deferred += snap.deferred;
            folded.holds += snap.holds;
            folded.forced_flushes += snap.forced_flushes;
            folded.bypasses += snap.bypasses;
            folded.ewma_depth_milli += snap.ewma_depth_milli;
        }
    }
    if queues == 0 {
        return None;
    }
    folded.ewma_depth_milli /= queues;
    Some(folded)
}

/// The bundle that travels in and out of fiber jobs: the TLS session plus
/// the connection's HTTP parsing state and, once the handshake control
/// plane has handed off, the batched data-plane record codec.
struct ConnCtx {
    session: Box<AnyServerSession>,
    http_buf: Vec<u8>,
    /// The data-plane codec; `Some` after the post-Finished handoff.
    codec: Option<RecordCodec>,
    /// Provider + counters the data plane seals/opens through (the
    /// handshake session keeps its own for control-plane ops).
    provider: CryptoProvider,
    counters: OpCounters,
    rng: TestRng,
    /// Wire records sealed by the codec this pass, flushed to the
    /// socket by `finish_service`.
    wire_out: Vec<u8>,
    record_offload: bool,
    record_batch: usize,
    /// The connection's span tree when it was sampled for tracing;
    /// `None` (no allocation, no clock reads) otherwise.
    trace: Option<ConnTrace>,
    /// Open handshake span, until the flight that completes it.
    hs_span: Option<u32>,
    /// Open serve span for the current established service pass.
    serve_span: Option<u32>,
}

/// Result of one service pass over a connection.
struct ServiceReport {
    handshake_done: bool,
    resumed: bool,
    resume_miss: bool,
    requests: u64,
    bytes_sent: u64,
    bytes_received: u64,
    /// This pass performed the control-plane → data-plane handoff.
    handoff: bool,
    close: bool,
    error: Option<TlsError>,
}

/// Run the TLS state machine + HTTP layer over whatever input has been
/// fed. Runs inside a fiber job under the async profiles, so every
/// crypto call inside may pause the job.
fn service(ctx: &mut ConnCtx, content: &ContentStore, plane: &MetricsPlane) -> ServiceReport {
    let mut report = ServiceReport {
        handshake_done: false,
        resumed: false,
        resume_miss: false,
        requests: 0,
        bytes_sent: 0,
        bytes_received: 0,
        handoff: false,
        close: false,
        error: None,
    };
    if ctx.codec.is_none() {
        let was_established = ctx.session.is_established();
        match ctx.session.process() {
            Ok(()) => {}
            Err(e) => {
                report.error = Some(e);
                report.close = true;
                return report;
            }
        }
        if !was_established && ctx.session.is_established() {
            report.handshake_done = true;
            report.resumed = ctx.session.was_resumed();
            report.resume_miss = ctx.session.resume_missed();
        }
        // Application data the handshake session decrypted before the
        // handoff (e.g. a request pipelined behind Finished).
        while let Some(chunk) = ctx.session.read_app_data() {
            report.bytes_received += chunk.len() as u64;
            ctx.http_buf.extend_from_slice(&chunk);
        }
        // Control plane → data plane: once established, the handshake
        // session exports its record secrets (sequence spaces included)
        // and the batched codec owns record protection from here on.
        if ctx.record_offload && ctx.session.is_established() {
            match ctx.session.extract_secrets() {
                Ok((secrets, leftover)) => {
                    ctx.codec = Some(RecordCodec::new(secrets, leftover, ctx.record_batch));
                    report.handoff = true;
                }
                Err(e) => {
                    report.error = Some(e);
                    report.close = true;
                    return report;
                }
            }
        }
    }
    if let Some(codec) = &mut ctx.codec {
        let mut plain = Vec::new();
        let open_span = ctx
            .trace
            .as_mut()
            .map(|t| t.begin(SpanKind::RecordOpen, obs::now_ns()));
        match codec.open_into(&mut plain, &ctx.provider, &mut ctx.counters) {
            Ok(records) => {
                if let (Some(trace), Some(id)) = (&mut ctx.trace, open_span) {
                    trace.end_annotated(id, obs::now_ns(), records as u64, plain.len() as u64);
                }
                report.bytes_received += plain.len() as u64;
                ctx.http_buf.extend_from_slice(&plain);
            }
            Err(e) => {
                if let (Some(trace), Some(id)) = (&mut ctx.trace, open_span) {
                    trace.end(id, obs::now_ns());
                }
                report.error = Some(e);
                report.close = true;
                return report;
            }
        }
    }
    loop {
        match http::parse_request(&ctx.http_buf) {
            ParseOutcome::Complete(req, used) => {
                ctx.http_buf.drain(..used);
                // Observability endpoints take a query string; plain
                // content paths never carry one.
                let (path, query) = match req.path.split_once('?') {
                    Some((p, q)) => (p, q),
                    None => (req.path.as_str(), ""),
                };
                let (status, reason, body) = if req.method != "GET" {
                    (405, "Method Not Allowed", Vec::new())
                } else if let Some((status, reason, text)) = plane.serve(path, query) {
                    (status, reason, text.into_bytes())
                } else {
                    match content.get(path) {
                        Some(body) => (200, "OK", body),
                        None => (404, "Not Found", Vec::new()),
                    }
                };
                let resp = http::build_response(status, reason, &body, req.keep_alive);
                report.bytes_sent += resp.len() as u64;
                report.requests += 1;
                match &mut ctx.codec {
                    // Data plane: stage now, seal the whole pass as one
                    // scatter-gather batch below.
                    Some(codec) => codec.stage(&resp),
                    None => {
                        if let Err(e) = ctx.session.write_app_data(&resp) {
                            report.error = Some(e);
                            report.close = true;
                            break;
                        }
                    }
                }
                if !req.keep_alive {
                    report.close = true;
                    break;
                }
            }
            ParseOutcome::Partial => break,
            ParseOutcome::Bad(_) => {
                report.close = true;
                break;
            }
        }
    }
    // One batched flush per service pass: every response staged above is
    // sealed through the engine in batches of `record_batch` in-place
    // descriptors — one doorbell per batch, not per record.
    if let Some(codec) = &mut ctx.codec {
        if codec.staged_bytes() > 0 {
            let wire_before = ctx.wire_out.len();
            let seal_span = ctx
                .trace
                .as_mut()
                .map(|t| t.begin(SpanKind::RecordSeal, obs::now_ns()));
            match codec.flush_into(
                &mut ctx.wire_out,
                &ctx.provider,
                &mut ctx.counters,
                &mut ctx.rng,
            ) {
                Ok(records) => {
                    if let (Some(trace), Some(id)) = (&mut ctx.trace, seal_span) {
                        let sealed = (ctx.wire_out.len() - wire_before) as u64;
                        trace.end_annotated(id, obs::now_ns(), records as u64, sealed);
                    }
                }
                Err(e) => {
                    if let (Some(trace), Some(id)) = (&mut ctx.trace, seal_span) {
                        trace.end(id, obs::now_ns());
                    }
                    report.error = Some(e);
                    report.close = true;
                }
            }
        }
    }
    report
}

/// Per-connection driver state (§4.2's TLS state machine extension: the
/// `Awaiting` arm is the TLS-ASYNC state).
enum Driver {
    /// Session available; events can be handled directly.
    Idle(ConnCtx),
    /// An offload job is paused awaiting an async event.
    Awaiting {
        job: qtls_core::AsyncJob<(ConnCtx, ServiceReport)>,
        /// A read event arrived while the async event was expected; its
        /// handler was saved and will be replayed (§4.2).
        saved_read: bool,
        /// Paused due to a full request ring; resume to retry.
        retry: bool,
    },
    /// Transitional.
    Taken,
}

struct Conn {
    sock: VSocket,
    driver: Driver,
    fd: Option<Arc<VirtualFd>>,
    established: bool,
    close_requested: bool,
    /// Past the admission gate (always true with admission off).
    admitted: bool,
    /// First bytes buffered while the admission gate classifies them
    /// (frame vs raw ClientHello); fed to the session on admission.
    pre_buf: Vec<u8>,
    /// The client's declared address, which retry tokens bind to.
    peer_addr: u64,
    /// This connection carries a span trace (mirrors `ctx.trace` so the
    /// worker can skip clock reads without touching the driver).
    sampled: bool,
    /// When the admission gate first engaged (0 = not measuring).
    gate_start_ns: u64,
    /// How the gate resolved: 0 passed, 1 challenged, 2 token verified.
    admitted_via: u64,
    /// Open offload-wait interval: (start, engine submit annotation)
    /// — measured on the worker side while the ctx is away in a fiber.
    await_open: Option<(u64, Option<(u32, u64)>)>,
    /// Closed offload-wait intervals awaiting transfer into the trace:
    /// (start, end, shard, path).
    await_spans: Vec<(u64, u64, u64, u64)>,
}

/// The event-driven worker.
pub struct Worker {
    cfg: WorkerConfig,
    listener: Arc<VListener>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    engine: Option<Arc<OffloadEngine>>,
    heuristic: Option<HeuristicPoller>,
    _timer_poller: Option<TimerPoller>,
    async_queue: Arc<AsyncQueue<u64>>,
    selector: Option<FdSelector>,
    /// Aggregated statistics.
    pub stats: WorkerStats,
    session_seed: u64,
    plane: Arc<MetricsPlane>,
    iterations: u64,
    /// Coarse stamp of the last anomaly check (wall cadence, not
    /// iteration counts — see `qat_anomaly_interval_ms`).
    last_anomaly_check_ms: u64,
    /// Inflight handshakes crossed the admission watermark last sweep.
    in_overload: bool,
    /// Set at shutdown: stop taking new accepts so still-queued
    /// sockets drain with accounting instead of being half-served.
    accepts_paused: bool,
}

impl Worker {
    /// Build a worker for `cfg.profile`, allocating the configured number
    /// of QAT instances (shards) from `device` for the offloading
    /// profiles — by default one per device endpoint, spread over
    /// distinct endpoints.
    pub fn new(listener: Arc<VListener>, device: Option<&QatDevice>, cfg: WorkerConfig) -> Self {
        let profile = cfg.profile;
        let engine = if profile.uses_qat() {
            let device = device.expect("offload profile requires a QAT device");
            let mode = if profile.uses_async() {
                EngineMode::Async
            } else {
                EngineMode::Blocking
            };
            let shard_count = if cfg.shards == 0 {
                device.config().endpoints.max(1)
            } else {
                cfg.shards
            };
            Some(Arc::new(OffloadEngine::sharded(
                device.alloc_instances(shard_count),
                mode,
                cfg.shard_policy,
            )))
        } else {
            None
        };
        let timer_poller = match (profile.polling(), &engine) {
            (Some(PollingScheme::TimerThread(default)), Some(engine)) => {
                let interval = cfg.timer_interval.unwrap_or(default);
                Some(TimerPoller::spawn(Arc::clone(engine), interval))
            }
            _ => None,
        };
        let heuristic = match (profile.polling(), &engine) {
            (Some(PollingScheme::Heuristic), Some(engine)) => {
                Some(HeuristicPoller::new(Arc::clone(engine), cfg.heuristic))
            }
            _ => None,
        };
        let selector = match profile.notification() {
            Some(NotifyScheme::Fd) => Some(FdSelector::new()),
            _ => None,
        };
        // Async profiles batch submissions per event-loop sweep — one
        // queue per shard, so the flush policy applies per ring pair; the
        // blocking profile (QAT+S) submits in place and needs no queue.
        if let Some(engine) = &engine {
            if profile.uses_async() {
                for i in 0..engine.shard_count() {
                    engine.attach_shard_submit_queue(
                        i,
                        Arc::new(SubmitQueue::with_policy(cfg.flush)),
                    );
                }
            }
        }
        // `qat_metrics on`: size the flight ring, then enable tracing,
        // histograms and the recorder (queues are attached above, so
        // `enable_metrics` wires them all).
        if cfg.metrics.enabled {
            if let Some(engine) = &engine {
                engine
                    .obs()
                    .recorder()
                    .set_capacity(cfg.metrics.flight_capacity);
                engine.enable_metrics();
            }
        }
        let plane = Arc::new(MetricsPlane::new(cfg.metrics, engine.clone()));
        // Connection tracing: stamp backlog entry times on this worker's
        // listener so accept-wait spans have a start edge.
        if cfg.metrics.trace_sample_rate > 0 {
            listener.set_queue_timestamps(true);
        }
        Worker {
            cfg,
            listener,
            conns: HashMap::new(),
            next_id: 1,
            engine,
            heuristic,
            _timer_poller: timer_poller,
            async_queue: Arc::new(AsyncQueue::new()),
            selector,
            stats: WorkerStats::default(),
            session_seed: 0x9_0000_0000,
            plane,
            iterations: 0,
            last_anomaly_check_ms: 0,
            in_overload: false,
            accepts_paused: false,
        }
    }

    /// Stop accepting new connections (shutdown drain): sockets still
    /// queued on the listener stay there for the cluster to drain and
    /// count instead of being accepted into a dying worker.
    pub fn pause_accepts(&mut self) {
        self.accepts_paused = true;
    }

    /// Is the worker in overload mode (inflight handshakes at or over
    /// the admission watermark, as of the last sweep)?
    pub fn in_overload(&self) -> bool {
        self.in_overload
    }

    /// The offload engine, if any (inflight counters etc.).
    pub fn engine(&self) -> Option<&Arc<OffloadEngine>> {
        self.engine.as_ref()
    }

    /// Simulated user/kernel mode switches spent on async notification
    /// (0 under the kernel-bypass scheme).
    pub fn kernel_switches(&self) -> u64 {
        self.selector
            .as_ref()
            .map(|s| s.meter().total())
            .unwrap_or(0)
    }

    /// `TC_alive`: currently-open connections.
    pub fn tc_alive(&self) -> u64 {
        self.conns.len() as u64
    }

    /// `TC_idle`: established connections waiting for a request.
    pub fn tc_idle(&self) -> u64 {
        self.tc_alive() - self.tc_active()
    }

    /// Render the `stub_status`-style page the heuristic scheme builds
    /// on (§4.3 extends this very module's accounting). The original
    /// single-instance lines keep their exact shape; workers whose
    /// engine stages submissions per shard append one aggregate
    /// `shards:` line plus a row per shard.
    pub fn stub_status(&self) -> String {
        metrics::render_stub_status(&self.status_snapshot(), self.engine.as_deref())
    }

    /// The machine-parseable `stub_status?format=kv` variant: one
    /// `key value` pair per line, keys a superset of the human page's
    /// numeric fields.
    pub fn stub_status_kv(&self) -> String {
        metrics::render_stub_status_kv(&self.status_snapshot(), self.engine.as_deref())
    }

    /// The worker's metrics plane (shared with in-band HTTP endpoints).
    pub fn metrics_plane(&self) -> &Arc<MetricsPlane> {
        &self.plane
    }

    /// Current worker-level statistics as one snapshot.
    fn status_snapshot(&self) -> StatusSnapshot {
        StatusSnapshot {
            stats: self.stats,
            tc_alive: self.tc_alive(),
            tc_idle: self.tc_idle(),
            tc_active: self.tc_active(),
            heuristic: self.heuristic.as_ref().map(|h| h.stats()),
            kernel_switches: self.kernel_switches(),
            load: self.load_gauge(),
            dispatch_policy: match self.cfg.sched.as_ref().map(|s| s.policy()) {
                Some(crate::sched::DispatchPolicy::LeastLoaded) => 1,
                _ => 0,
            },
        }
    }

    /// `TC_active = TC_alive - TC_idle` (§4.3): connections that are
    /// handshaking, or have inflight work.
    pub fn tc_active(&self) -> u64 {
        self.conns
            .values()
            .filter(|c| {
                !c.established || matches!(c.driver, Driver::Awaiting { .. }) || c.sock.readable()
            })
            .count() as u64
    }

    fn provider(&self) -> CryptoProvider {
        match &self.engine {
            None => CryptoProvider::Software,
            Some(engine) => CryptoProvider::Offload {
                engine: Arc::clone(engine),
                selection: self.cfg.selection,
            },
        }
    }

    /// One turn of the main event loop. Returns the number of events
    /// handled (0 = idle).
    pub fn run_iteration(&mut self) -> usize {
        let mut events = 0;
        // 0. Overload check (QFAM): count inflight handshakes against
        // the admission watermark before this sweep's accepts.
        if self.cfg.admission.enabled {
            let inflight = self.conns.values().filter(|c| !c.established).count() as u64;
            let overload = inflight >= self.cfg.admission.watermark;
            if overload && !self.in_overload {
                self.stats.overload_entered += 1;
            }
            self.in_overload = overload;
        }
        // 1. Accept new connections — capped per sweep so a flood of
        // fresh sockets cannot starve in-flight connections behind an
        // arbitrarily long accept loop. When the own backlog runs dry
        // with stealing enabled, take the newest half of the most-loaded
        // sibling's backlog instead of going idle (dFCFS+steal; at most
        // one steal per sweep).
        let mut accepts_left = self.cfg.admission.accepts_per_sweep;
        let mut accepted_now = 0u64;
        let mut stole = false;
        while accepts_left > 0 && !self.accepts_paused {
            let Some(sock) = self.listener.accept() else {
                if stole {
                    break;
                }
                stole = true;
                let stolen = self.steal_batch(accepts_left);
                if stolen.is_empty() {
                    break;
                }
                for sock in stolen {
                    accepts_left -= 1;
                    self.admit_socket(sock);
                    accepted_now += 1;
                    events += 1;
                }
                continue;
            };
            accepts_left -= 1;
            self.admit_socket(sock);
            accepted_now += 1;
            events += 1;
        }
        // Backlog space freed (own or the steal victim's): wake a
        // dispatcher parked on all-full backlogs.
        if accepted_now > 0 {
            if let Some(sched) = &self.cfg.sched {
                sched.note_drain();
            }
        }
        // 2. Socket read events. In overload mode, established
        // connections' record I/O is driven before handshaking ones,
        // and older (further-along) handshakes before fresh
        // ClientHellos — the QFAM priority order.
        let mut readable: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.sock.readable() || c.sock.peer_closed())
            .map(|(id, _)| *id)
            .collect();
        if self.in_overload {
            readable.sort_by_key(|id| {
                let c = &self.conns[id];
                (!c.established, *id)
            });
        }
        for id in readable {
            events += 1;
            let conn = self.conns.get_mut(&id).expect("exists");
            if let Driver::Awaiting { saved_read, .. } = &mut conn.driver {
                // §4.2: save the read handler; replay after the async
                // event is processed.
                *saved_read = true;
            } else if conn.sock.peer_closed() && !conn.sock.readable() {
                self.remove_conn(id);
            } else {
                self.drive(id);
            }
        }
        // 3. QAT response retrieval (heuristic profiles; timer profiles
        // poll from their dedicated thread).
        if let Some(h) = &mut self.heuristic {
            let tc_active = self
                .conns
                .values()
                .filter(|c| {
                    !c.established
                        || matches!(c.driver, Driver::Awaiting { .. })
                        || c.sock.readable()
                })
                .count() as u64;
            events += h.maybe_poll(tc_active);
            events += h.failover_check();
        }
        // 4. Async event delivery.
        match self.cfg.profile.notification() {
            Some(NotifyScheme::KernelBypass) => {
                // Drain the application async queue (processed "at the
                // end of the main event loop", §3.4).
                for id in self.async_queue.drain() {
                    events += 1;
                    self.resume(id);
                }
            }
            Some(NotifyScheme::Fd) => {
                if let Some(selector) = &self.selector {
                    let ready = selector.poll_ready();
                    for id in ready {
                        events += 1;
                        if let Some(conn) = self.conns.get(&id) {
                            if let Some(fd) = &conn.fd {
                                fd.clear();
                            }
                        }
                        self.resume(id);
                    }
                }
            }
            None => {}
        }
        // 5. Ring-full retries: reschedule paused jobs.
        let retries: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.driver, Driver::Awaiting { retry: true, .. }))
            .map(|(id, _)| *id)
            .collect();
        for id in retries {
            events += 1;
            self.stats.retries += 1;
            self.resume(id);
        }
        // 6. Sweep boundary: let the flush policy decide whether the
        // staged batch publishes now (one cursor publish, one doorbell)
        // or holds for a deeper batch. All submit counters come from the
        // queue's own stats — folding them from per-sweep reports lost
        // `deferred` whenever the report was otherwise empty.
        if let Some(engine) = &self.engine {
            let report = engine.flush_submissions();
            events += report.submitted;
            if let Some(folded) = folded_submit_stats(engine) {
                self.stats.flushes = folded.flushes;
                self.stats.flushed_requests = folded.flushed_requests;
                self.stats.max_flush_depth = folded.max_depth;
                self.stats.deferred_submits = folded.deferred;
                self.stats.submit_holds = folded.holds;
                self.stats.forced_flushes = folded.forced_flushes;
                self.stats.bypassed_submits = folded.bypasses;
                self.stats.ewma_flush_depth_milli = folded.ewma_depth_milli;
            }
        }
        // 7. Refresh the metrics plane's worker snapshot and run the
        // (cheap, periodic) anomaly check against the phase p99s.
        self.stats.accept_sheds = self.listener.rejected();
        if let Some(sched) = &self.cfg.sched {
            sched.publish(self.cfg.worker_index, self.load_gauge());
        }
        self.iterations += 1;
        self.plane.update(self.status_snapshot());
        // Anomaly check on a wall-clock cadence: an iteration-count
        // cadence ran 256 sweeps apart, which on a saturated loop could
        // be microseconds and on an idle one could be never-in-time.
        if self.cfg.metrics.enabled && self.cfg.metrics.anomaly_p99_us > 0 {
            let now_ms = qtls_qat::trace::now_ms();
            if now_ms.saturating_sub(self.last_anomaly_check_ms)
                >= self.cfg.metrics.anomaly_interval_ms
            {
                self.last_anomaly_check_ms = now_ms;
                self.plane.check_anomaly();
            }
        }
        events
    }

    /// The worker's load gauge, as published to the scheduling plane:
    /// accepted-but-unserved backlog + inflight handshakes + staged
    /// offload depth.
    pub fn load_gauge(&self) -> u64 {
        let handshaking = self.conns.values().filter(|c| !c.established).count() as u64;
        let inflight = self
            .engine
            .as_ref()
            .map(|e| e.inflight().total())
            .unwrap_or(0);
        self.listener.pending() as u64 + handshaking + inflight
    }

    /// Turn an accepted (or stolen) socket into a tracked connection.
    fn admit_socket(&mut self, sock: VSocket) {
        let id = self.next_id;
        self.next_id += 1;
        self.session_seed += 1;
        let session = Box::new(AnyServerSession::new(
            self.cfg.version,
            Arc::clone(&self.cfg.tls),
            self.provider(),
            self.session_seed,
        ));
        let peer_addr = sock.peer_addr();
        // 1-in-N sampling decision — one relaxed fetch_add when tracing
        // is on, one relaxed load when off. A sampled connection's root
        // span opens at backlog entry (if stamped) so the accept wait is
        // inside the connection's wall time.
        let trace = self.plane.trace_sink().sample().map(|conn_id| {
            let now = obs::now_ns();
            let queued = sock.queued_ns();
            let start = if queued != 0 && queued < now {
                queued
            } else {
                now
            };
            let mut trace = ConnTrace::new(conn_id, self.cfg.worker_index as u32, start);
            if queued != 0 && queued < now {
                trace.add(
                    SpanKind::AcceptWait,
                    queued,
                    now,
                    u64::from(sock.dispatch_probes()),
                    u64::from(sock.stolen()),
                );
            }
            trace
        });
        let sampled = trace.is_some();
        self.conns.insert(
            id,
            Conn {
                sock,
                driver: Driver::Idle(ConnCtx {
                    session,
                    http_buf: Vec::new(),
                    codec: None,
                    provider: self.provider(),
                    counters: OpCounters::default(),
                    rng: TestRng::new(self.session_seed ^ 0xda7a_9a7e),
                    wire_out: Vec::new(),
                    record_offload: self.cfg.record_offload,
                    record_batch: self.cfg.record_batch,
                    trace,
                    hs_span: None,
                    serve_span: None,
                }),
                fd: None,
                established: false,
                close_requested: false,
                admitted: !self.cfg.admission.enabled,
                pre_buf: Vec::new(),
                peer_addr,
                sampled,
                gate_start_ns: 0,
                admitted_via: 0,
                await_open: None,
                await_spans: Vec::new(),
            },
        );
        self.stats.accepted += 1;
    }

    /// Steal up to `max` sockets (half the victim's backlog, newest
    /// half) from the most-loaded sibling. Returns the stolen sockets;
    /// empty when stealing is off, nobody is strictly busier, or the
    /// victim's backlog is too shallow to split.
    fn steal_batch(&mut self, max: usize) -> Vec<VSocket> {
        let Some(sched) = self.cfg.sched.clone() else {
            return Vec::new();
        };
        if !sched.steal_enabled() || max == 0 {
            return Vec::new();
        }
        let me = self.cfg.worker_index;
        let Some(victim) = sched.most_loaded_except(me) else {
            return Vec::new();
        };
        let Some(victim_listener) = self.cfg.peers.get(victim) else {
            return Vec::new();
        };
        let stolen = victim_listener.steal_half(max);
        if !stolen.is_empty() {
            let n = stolen.len() as u64;
            sched.record_steal(me, victim, n);
            self.stats.steals += n;
        }
        stolen
    }

    /// Drain the submit pipeline for shutdown: publish what the ring can
    /// take, then fail every still-staged request with a definite
    /// `Cancelled` error so no waiter is silently dropped mid-sweep.
    pub fn shutdown(&mut self) {
        if let Some(engine) = &self.engine {
            let drained = engine.drain_submit_queue();
            self.stats.cancelled_submits += drained.cancelled as u64;
            if let Some(folded) = folded_submit_stats(engine) {
                self.stats.flushes = folded.flushes;
                self.stats.flushed_requests = folded.flushed_requests;
                self.stats.max_flush_depth = folded.max_depth;
                self.stats.deferred_submits = folded.deferred;
            }
        }
    }

    /// Run the loop until `stop` returns true, yielding when idle.
    pub fn run_until(&mut self, mut stop: impl FnMut(&mut Worker) -> bool) {
        while !stop(self) {
            if self.run_iteration() == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// The admission gate for a connection that has not been admitted:
    /// buffer its first bytes and classify them. Returns `true` when
    /// the connection may proceed into TLS processing this pass.
    fn admission_gate(&mut self, id: u64) -> bool {
        let conn = self.conns.get_mut(&id).expect("caller checked");
        if let Ok(bytes) = conn.sock.read_all() {
            conn.pre_buf.extend_from_slice(&bytes);
        }
        match admission::parse_frame(&conn.pre_buf) {
            FrameParse::Incomplete => {
                if conn.sock.peer_closed() {
                    self.remove_conn(id);
                }
                false
            }
            FrameParse::Malformed
            | FrameParse::Frame {
                kind: admission::FRAME_CHALLENGE,
                ..
            } => {
                // Hostile header, or a frame only servers send.
                self.stats.tokens_rejected += 1;
                self.remove_conn(id);
                false
            }
            FrameParse::Frame {
                token, consumed, ..
            } => {
                let now = admission::coarse_now_secs();
                let ok = self.cfg.tls.ticket_keys.verify_retry_token(
                    &token,
                    conn.peer_addr,
                    now,
                    self.cfg.admission.token_lifetime.as_secs(),
                );
                if !ok {
                    self.stats.tokens_rejected += 1;
                    self.remove_conn(id);
                    return false;
                }
                self.stats.tokens_verified += 1;
                conn.admitted = true;
                conn.admitted_via = 2;
                conn.pre_buf.drain(..consumed);
                true
            }
            FrameParse::NotAFrame => {
                if self.in_overload {
                    // Over the watermark: challenge instead of spending
                    // any asymmetric offload work on this ClientHello.
                    let now = admission::coarse_now_secs();
                    let token = self
                        .cfg
                        .tls
                        .ticket_keys
                        .mint_retry_token(conn.peer_addr, now);
                    let _ = conn.sock.write(&admission::challenge_frame(&token));
                    self.stats.challenges_sent += 1;
                    conn.admitted_via = 1;
                    self.remove_conn(id);
                    return false;
                }
                conn.admitted = true;
                true
            }
        }
    }

    /// Drive a connection that has a usable session.
    fn drive(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !matches!(conn.driver, Driver::Idle(_)) {
            return; // still awaiting an async event
        }
        if !conn.admitted {
            // Admission round-trip span: opens when the gate first sees
            // the connection, closes when it passes (or in `remove_conn`
            // when it is challenged away).
            if conn.sampled && conn.gate_start_ns == 0 {
                conn.gate_start_ns = obs::now_ns();
            }
            if !self.admission_gate(id) {
                return;
            }
        }
        let conn = self.conns.get_mut(&id).expect("gate keeps admitted conns");
        let Driver::Idle(mut ctx) = std::mem::replace(&mut conn.driver, Driver::Taken) else {
            unreachable!("checked above")
        };
        if let Some(trace) = &mut ctx.trace {
            let now = obs::now_ns();
            if conn.gate_start_ns != 0 {
                trace.add(
                    SpanKind::Admission,
                    conn.gate_start_ns,
                    now,
                    conn.admitted_via,
                    0,
                );
                conn.gate_start_ns = 0;
            }
            if !conn.established {
                if ctx.hs_span.is_none() {
                    ctx.hs_span = Some(trace.begin(SpanKind::Handshake, now));
                }
            } else if ctx.serve_span.is_none() {
                ctx.serve_span = Some(trace.begin(SpanKind::Serve, now));
            }
        }
        // Feed everything readable: first any bytes the admission gate
        // buffered ahead of the handshake, then fresh reads — to the
        // data-plane codec once the connection has handed off, to the
        // handshake session before.
        let pre = std::mem::take(&mut conn.pre_buf);
        if !pre.is_empty() {
            match &mut ctx.codec {
                Some(codec) => codec.feed(&pre),
                None => ctx.session.feed(&pre),
            }
        }
        match conn.sock.read_all() {
            Ok(bytes) => match &mut ctx.codec {
                Some(codec) => codec.feed(&bytes),
                None => ctx.session.feed(&bytes),
            },
            Err(SockError::WouldBlock) | Err(SockError::Closed) => {}
        }
        let use_async = self.cfg.profile.uses_async();
        let content = Arc::clone(&self.cfg.content);
        let plane = Arc::clone(&self.plane);
        if use_async {
            match fiber::start_job(move || {
                let report = service(&mut ctx, &content, &plane);
                (ctx, report)
            }) {
                StartResult::Finished((ctx, report)) => {
                    self.finish_service(id, ctx, report);
                }
                StartResult::Paused(job) => {
                    self.stats.async_jobs += 1;
                    self.enter_async(id, job);
                }
            }
        } else {
            let report = service(&mut ctx, &content, &plane);
            self.finish_service(id, ctx, report);
        }
    }

    /// Transition a connection into TLS-ASYNC: register the notification
    /// channel on the job's wait context.
    fn enter_async(&mut self, id: u64, job: qtls_core::AsyncJob<(ConnCtx, ServiceReport)>) {
        let retry = job.wait_ctx().take_retry();
        match self.cfg.profile.notification() {
            Some(NotifyScheme::KernelBypass) => {
                // SSL_set_async_callback equivalent: the async queue IS
                // the notifier — the response callback delivers the
                // async-handler token (the connection id) straight onto
                // it, no closure indirection.
                let queue: Arc<AsyncQueue<u64>> = Arc::clone(&self.async_queue);
                job.wait_ctx().set_notifier(queue, id);
                // Race repair: a dedicated poller may have retrieved the
                // response between submission and this registration — the
                // parked result would otherwise never be announced.
                if job.wait_ctx().has_result() {
                    self.async_queue.push(id);
                }
            }
            Some(NotifyScheme::Fd) => {
                let conn = self.conns.get_mut(&id).expect("exists");
                // §4.4 optimization: one FD shared across all async jobs
                // of the same connection.
                let fd = conn.fd.get_or_insert_with(|| {
                    let fd = Arc::new(VirtualFd::new(id));
                    if let Some(sel) = &self.selector {
                        sel.register(Arc::clone(&fd));
                    }
                    fd
                });
                let fd_notifier: Arc<VirtualFd> = Arc::clone(fd);
                job.wait_ctx().set_notifier(fd_notifier, id);
                if job.wait_ctx().has_result() {
                    fd.signal();
                }
            }
            None => unreachable!("async profile without notification"),
        }
        let conn = self.conns.get_mut(&id).expect("exists");
        if conn.sampled && conn.await_open.is_none() {
            conn.await_open = Some((obs::now_ns(), job.wait_ctx().submit_info()));
        }
        conn.driver = Driver::Awaiting {
            job,
            saved_read: false,
            retry,
        };
    }

    /// Resume a paused offload job (post-processing phase).
    fn resume(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let Driver::Awaiting {
            job, saved_read, ..
        } = std::mem::replace(&mut conn.driver, Driver::Taken)
        else {
            return;
        };
        // Close the offload-wait interval at the moment the notification
        // is acted on — submit → notify → resume is the paper's async
        // round trip, and it all happened while the ctx was in the job.
        if conn.sampled {
            if let Some((start, info)) = conn.await_open.take() {
                let (shard, path) = info.unwrap_or((0, 0));
                conn.await_spans
                    .push((start, obs::now_ns(), u64::from(shard), path));
            }
        }
        self.stats.resumptions += 1;
        match job.resume() {
            StartResult::Finished((ctx, report)) => {
                self.finish_service(id, ctx, report);
                // Replay the saved read event (§4.2).
                if saved_read {
                    if let Some(conn) = self.conns.get(&id) {
                        if conn.sock.readable() {
                            self.drive(id);
                        }
                    }
                }
            }
            StartResult::Paused(job) => {
                // Another crypto op inside the same service pass.
                let retry = job.wait_ctx().take_retry();
                let conn = self.conns.get_mut(&id).expect("exists");
                if conn.sampled {
                    conn.await_open = Some((obs::now_ns(), job.wait_ctx().submit_info()));
                }
                conn.driver = Driver::Awaiting {
                    job,
                    saved_read,
                    retry,
                };
            }
        }
    }

    /// Post-service bookkeeping: flush output, update stats, close.
    fn finish_service(&mut self, id: u64, mut ctx: ConnCtx, report: ServiceReport) {
        let out = ctx.session.take_output();
        let wire = std::mem::take(&mut ctx.wire_out);
        let conn = self.conns.get_mut(&id).expect("exists");
        if !out.is_empty() {
            let _ = conn.sock.write(&out);
        }
        if !wire.is_empty() {
            let _ = conn.sock.write(&wire);
        }
        // Fold the pass's offload waits into the trace (they become
        // children of whichever control-plane span is still open), then
        // close the spans this pass resolved.
        if let Some(trace) = &mut ctx.trace {
            for (start, end, shard, path) in conn.await_spans.drain(..) {
                trace.add(SpanKind::OffloadWait, start, end, shard, path);
            }
            let now = obs::now_ns();
            if report.handshake_done {
                if let Some(hs) = ctx.hs_span.take() {
                    let resume_tag = if report.resumed {
                        1
                    } else if report.resume_miss {
                        2
                    } else {
                        0
                    };
                    trace.end_annotated(hs, now, resume_tag, u64::from(report.handoff));
                }
            }
            if let Some(sv) = ctx.serve_span.take() {
                trace.end_annotated(sv, now, report.requests, report.bytes_sent);
            }
        }
        if report.handoff {
            self.stats.record_handoffs += 1;
        }
        if report.handshake_done {
            self.stats.handshakes += 1;
            if report.resumed {
                self.stats.resumed += 1;
            }
            if report.resume_miss {
                self.stats.resume_miss += 1;
            }
            conn.established = true;
        }
        self.stats.requests += report.requests;
        self.stats.bytes_sent += report.bytes_sent;
        self.stats.bytes_received += report.bytes_received;
        if report.error.is_some() {
            self.stats.errors += 1;
        }
        conn.driver = Driver::Idle(ctx);
        if report.close || conn.close_requested {
            self.remove_conn(id);
        }
    }

    fn remove_conn(&mut self, id: u64) {
        if let Some(mut conn) = self.conns.remove(&id) {
            if let (Some(fd), Some(sel)) = (&conn.fd, &self.selector) {
                sel.deregister(fd.id);
            }
            // Publish the connection's span tree on teardown — the only
            // point where the tree is guaranteed complete. Challenged or
            // errored connections publish partial trees, which is the
            // point: the gate's work is visible even when nothing else
            // happened.
            if conn.sampled {
                let now = obs::now_ns();
                let trace = match &mut conn.driver {
                    Driver::Idle(ctx) => ctx.trace.take(),
                    // Torn down mid-offload: the ctx (and its trace) is
                    // away in the fiber; nothing to publish.
                    _ => None,
                };
                if let Some(mut trace) = trace {
                    if let Some((start, info)) = conn.await_open.take() {
                        let (shard, path) = info.unwrap_or((0, 0));
                        conn.await_spans.push((start, now, u64::from(shard), path));
                    }
                    for (start, end, shard, path) in conn.await_spans.drain(..) {
                        trace.add(SpanKind::OffloadWait, start, end, shard, path);
                    }
                    if conn.gate_start_ns != 0 {
                        trace.add(
                            SpanKind::Admission,
                            conn.gate_start_ns,
                            now,
                            conn.admitted_via,
                            0,
                        );
                    }
                    self.plane.trace_sink().publish(trace, now);
                }
            }
            conn.sock.close();
            self.stats.closed += 1;
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Idempotent: a second drain on an empty queue is a no-op, so an
        // explicit `shutdown()` followed by drop is fine.
        self.shutdown();
    }
}
