//! A multi-worker server — the paper's deployment shape: one master
//! (this struct), N worker event loops on dedicated cores, all accepting
//! from a shared listener, each with its own QAT crypto instance
//! "distributed evenly from the three QAT endpoints" (§5.1).

use crate::config_file::EngineDirectives;
use crate::http::ContentStore;
use crate::metrics::MetricsPlane;
use crate::net::VListener;
use crate::sched::{least_loaded_pick, DispatchPolicy, SchedShared, DISPATCH_PROBE};
use crate::worker::{Worker, WorkerConfig, WorkerStats};
use qtls_crypto::TestRng;
use qtls_qat::QatDevice;
use qtls_tls::server::ServerConfig;
use qtls_tls::store::{SharedSessionStore, TicketKeyRing};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-worker dispatch accounting kept by the master dispatcher.
struct DispatchCounters {
    /// Sockets handed to each worker's accept queue.
    dispatched: Vec<AtomicU64>,
    /// Injects each worker's full backlog bounced back.
    rejected: Vec<AtomicU64>,
    /// Sockets dropped because every worker's backlog was full.
    shed: AtomicU64,
}

/// Snapshot of the dispatcher's per-worker accounting.
#[derive(Clone, Debug, Default)]
pub struct DispatchSnapshot {
    /// Sockets handed to each worker's accept queue.
    pub dispatched: Vec<u64>,
    /// Injects each worker's full backlog bounced back (the socket was
    /// retried on the next worker, so a reject is not a drop).
    pub rejected: Vec<u64>,
    /// Sockets dropped at dispatch because every backlog was full.
    pub shed: u64,
    /// Sockets each worker stole INTO its backlog from a loaded sibling.
    pub stolen_in: Vec<u64>,
    /// Sockets stolen OUT of each worker's backlog by an idle sibling.
    pub stolen_out: Vec<u64>,
}

impl DispatchCounters {
    fn new(workers: usize) -> Self {
        DispatchCounters {
            dispatched: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            rejected: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            shed: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> DispatchSnapshot {
        DispatchSnapshot {
            dispatched: self
                .dispatched
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            rejected: self
                .rejected
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shed: self.shed.load(Ordering::Relaxed),
            // Steal accounting lives in the scheduling plane; the
            // cluster folds it in when it builds the report.
            stolen_in: vec![0; self.dispatched.len()],
            stolen_out: vec![0; self.dispatched.len()],
        }
    }
}

/// What `Cluster::shutdown` returns: per-worker stats plus a full
/// accounting of every socket that entered the cluster but was never
/// served — nothing disappears silently at shutdown.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Per-worker `(stats, kernel_switches)`, worker order.
    pub workers: Vec<(WorkerStats, u64)>,
    /// Sockets still queued on the shared listener when the dispatcher
    /// stopped (never assigned to a worker); drained and closed.
    pub undispatched: u64,
    /// Sockets per worker that were dispatched but never accepted
    /// (still in the worker's backlog at shutdown); drained and closed.
    pub dropped_accepts: Vec<u64>,
    /// The dispatcher's per-worker dispatch/reject/shed accounting.
    pub dispatch: DispatchSnapshot,
}

/// A running multi-worker HTTPS server.
pub struct Cluster {
    listener: Arc<VListener>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<(WorkerStats, u64)>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    device: Option<Arc<QatDevice>>,
    session_store: Arc<SharedSessionStore>,
    worker_listeners: Vec<Arc<VListener>>,
    dispatch: Arc<DispatchCounters>,
    sched: Arc<SchedShared>,
    /// Each worker's metrics plane, published by the worker thread as it
    /// boots (None until then) — lets in-process callers aggregate the
    /// per-worker trace sinks without an in-band scrape.
    planes: Arc<Mutex<Vec<Option<Arc<MetricsPlane>>>>>,
}

impl Cluster {
    /// Start `directives.worker_processes` workers sharing one listener.
    /// A QAT device is created automatically for offloading profiles.
    pub fn start(
        directives: &EngineDirectives,
        tls: Arc<ServerConfig>,
        content: Arc<ContentStore>,
    ) -> Self {
        let listener = Arc::new(VListener::new());
        // Cluster-shared resumption plane: one sharded session/PSK store
        // and one ticket key ring handed to every worker, so a ticket or
        // session id minted on worker A resumes on worker B instead of
        // silently falling back to a full handshake.
        let session_store = Arc::new(SharedSessionStore::new(
            directives.session_store_shards,
            100_000,
            directives.session_timeout,
        ));
        let mut ring_rng = TestRng::new(0x71c7_e75e_ed00_0001);
        let ticket_keys = Arc::new(TicketKeyRing::new(
            &mut ring_rng,
            directives.ticket_rotation,
        ));
        let tls = tls.with_resumption_plane(Arc::clone(&session_store), ticket_keys);
        let device = directives
            .profile
            .uses_qat()
            .then(|| Arc::new(QatDevice::with_defaults()));
        let stop = Arc::new(AtomicBool::new(false));
        // Per-worker accept queues, fed round-robin by the master
        // dispatcher ("handle incoming connections in a balanced
        // manner", §2.2). Backlogs are bounded by the admission
        // directive so a handshake flood cannot grow them without limit.
        let worker_listeners: Vec<Arc<VListener>> = (0..directives.worker_processes)
            .map(|_| Arc::new(VListener::with_capacity(directives.admission.backlog_cap)))
            .collect();
        // Queue-delay attribution: stamp sockets at arrival on the shared
        // listener so a sampled connection's accept-wait span covers the
        // whole dispatch path (shared backlog + worker backlog), not just
        // the last hop.
        if directives.metrics.trace_sample_rate > 0 {
            listener.set_queue_timestamps(true);
            for target in &worker_listeners {
                target.set_queue_timestamps(true);
            }
        }
        let dispatch = Arc::new(DispatchCounters::new(directives.worker_processes));
        let sched = Arc::new(SchedShared::new(
            directives.worker_processes,
            directives.dispatch_policy,
            directives.dispatch_steal,
        ));
        let dispatcher = {
            let shared = Arc::clone(&listener);
            let targets = worker_listeners.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&dispatch);
            let sched = Arc::clone(&sched);
            let policy = directives.dispatch_policy;
            let rebalance = directives
                .shard_rebalance
                .then_some(directives.shard_rebalance_threshold);
            let device = device.clone();
            std::thread::Builder::new()
                .name("qtls-master".into())
                .spawn(move || {
                    let mut next = 0usize;
                    let mut since_rebalance = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let Some(sock) = shared.accept() else {
                            // Co-tenant shard rebalancing: when idle,
                            // migrate one quiescent shard off an
                            // endpoint whose queue pressure exceeds its
                            // least-loaded sibling's by the configured
                            // gap.
                            if let (Some(threshold), Some(device)) = (rebalance, device.as_ref()) {
                                since_rebalance = 0;
                                device.rebalance(threshold);
                            }
                            // Idle: park on the listener's condvar
                            // instead of busy-spinning on yield_now.
                            shared.wait_pending(Duration::from_millis(1));
                            continue;
                        };
                        // Pick a start worker — blind rotation, or the
                        // least-loaded gauge within a bounded probe —
                        // then walk past full backlogs: a worker that
                        // bounces the inject gets a reject mark and the
                        // socket moves to the next one.
                        let mut pending = Some(sock);
                        let mut drain_waits = 0u32;
                        loop {
                            let start = match policy {
                                DispatchPolicy::RoundRobin => next,
                                DispatchPolicy::LeastLoaded => {
                                    least_loaded_pick(&sched.loads(), next, DISPATCH_PROBE)
                                }
                            };
                            // Read the drain generation BEFORE the walk:
                            // a worker accepting mid-walk must not be
                            // missed by the park below.
                            let gen = sched.drain_generation();
                            for attempt in 0..targets.len() {
                                let i = (start + attempt) % targets.len();
                                let mut sock = pending.take().expect("socket present");
                                // Annotate how many backlogs this socket
                                // was walked past; a sampled connection
                                // surfaces it on its accept-wait span.
                                sock.set_dispatch_probes(sock.dispatch_probes() + 1);
                                match targets[i].inject(sock) {
                                    Ok(()) => {
                                        counters.dispatched[i].fetch_add(1, Ordering::Relaxed);
                                        next = i + 1;
                                        break;
                                    }
                                    Err(back) => {
                                        counters.rejected[i].fetch_add(1, Ordering::Relaxed);
                                        pending = Some(back);
                                    }
                                }
                            }
                            if pending.is_none() {
                                break;
                            }
                            // Every backlog full. Don't shed on a blind
                            // backoff timer: park until some worker
                            // signals a backlog drain, then retry the
                            // round — a drain means some backlog has
                            // room, so each retry makes progress. Shed
                            // only when a wait passes with no drain at
                            // all (workers genuinely stuck) — dispatch
                            // latency under overload is bounded by the
                            // workers' drain rate.
                            drain_waits += 1;
                            if stop.load(Ordering::Relaxed)
                                || drain_waits > 64
                                || !sched.wait_drain(gen, Duration::from_millis(10))
                            {
                                break;
                            }
                        }
                        if let Some(sock) = pending {
                            counters.shed.fetch_add(1, Ordering::Relaxed);
                            sock.close();
                        } else {
                            // Under sustained load the idle arm above
                            // never runs; rebalance periodically too.
                            since_rebalance += 1;
                            if since_rebalance >= 256 {
                                since_rebalance = 0;
                                if let (Some(threshold), Some(device)) =
                                    (rebalance, device.as_ref())
                                {
                                    device.rebalance(threshold);
                                }
                            }
                        }
                    }
                })
                .expect("spawn dispatcher")
        };
        let planes: Arc<Mutex<Vec<Option<Arc<MetricsPlane>>>>> =
            Arc::new(Mutex::new(vec![None; directives.worker_processes]));
        let handles = (0..directives.worker_processes)
            .map(|i| {
                let mut cfg = WorkerConfig::from_directives(directives);
                cfg.tls = Arc::clone(&tls);
                cfg.content = Arc::clone(&content);
                cfg.sched = Some(Arc::clone(&sched));
                cfg.worker_index = i;
                cfg.peers = worker_listeners.clone();
                let listener = Arc::clone(&worker_listeners[i]);
                let device = device.clone();
                let stop = Arc::clone(&stop);
                let planes = Arc::clone(&planes);
                std::thread::Builder::new()
                    .name(format!("qtls-worker-{i}"))
                    .spawn(move || {
                        let mut worker = Worker::new(listener, device.as_deref(), cfg);
                        planes.lock().expect("planes lock")[i] =
                            Some(Arc::clone(worker.metrics_plane()));
                        let mut drain: Option<Instant> = None;
                        worker.run_until(|w| {
                            if !stop.load(Ordering::Relaxed) {
                                return false;
                            }
                            // Shutdown: stop accepting so still-queued
                            // sockets stay on the backlog for the
                            // cluster to drain and account, then give
                            // in-flight connections a bounded drain.
                            w.pause_accepts();
                            let d = *drain
                                .get_or_insert_with(|| Instant::now() + Duration::from_secs(2));
                            w.tc_alive() == 0 || Instant::now() > d
                        });
                        (worker.stats, worker.kernel_switches())
                    })
                    .expect("spawn worker")
            })
            .collect();
        Cluster {
            listener,
            stop,
            handles,
            dispatcher: Some(dispatcher),
            device,
            session_store,
            worker_listeners,
            dispatch,
            sched,
            planes,
        }
    }

    /// Each worker's metrics plane, in worker order (None for workers
    /// that have not finished booting yet).
    pub fn metrics_planes(&self) -> Vec<Option<Arc<MetricsPlane>>> {
        self.planes.lock().expect("planes lock").clone()
    }

    /// The cluster's scheduling plane (load gauges, steal accounting).
    pub fn sched(&self) -> &Arc<SchedShared> {
        &self.sched
    }

    /// The shared listener clients connect through.
    pub fn listener(&self) -> Arc<VListener> {
        Arc::clone(&self.listener)
    }

    /// The shared accelerator, if any.
    pub fn device(&self) -> Option<&Arc<QatDevice>> {
        self.device.as_ref()
    }

    /// The cluster-shared session/PSK store all workers resolve
    /// resumption state against.
    pub fn session_store(&self) -> Arc<SharedSessionStore> {
        Arc::clone(&self.session_store)
    }

    /// Stop all workers (draining in-flight connections) and account for
    /// every socket the cluster never served: still-undispatched sockets
    /// on the shared listener and dispatched-but-never-accepted sockets
    /// in the per-worker backlogs are drained, closed, and counted —
    /// shutdown drops nothing silently.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        let workers: Vec<(WorkerStats, u64)> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        // Workers paused accepts when they observed stop, so anything
        // still queued is exactly what would have been dropped silently.
        let undispatched = self.listener.drain();
        let dropped_accepts: Vec<u64> = self.worker_listeners.iter().map(|l| l.drain()).collect();
        let mut dispatch = self.dispatch.snapshot();
        (dispatch.stolen_in, dispatch.stolen_out) = self.sched.steal_totals();
        ShutdownReport {
            workers,
            undispatched,
            dropped_accepts,
            dispatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config_file::parse_ssl_engine_conf;
    use crate::loadgen::{run_connection, ClientConfig};
    use qtls_tls::server::ServerConfig;

    #[test]
    fn cluster_from_conf_serves_across_workers() {
        let directives = parse_ssl_engine_conf(
            r#"
worker_processes 3;
ssl_engine {
    use qat_engine;
    default_algorithm ALL;
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;
        qat_poll_mode heuristic;
    }
}
"#,
        )
        .unwrap();
        let cluster = Cluster::start(
            &directives,
            ServerConfig::test_default(),
            Arc::new(ContentStore::new()),
        );
        let listener = cluster.listener();
        // Enough connections that round-robin reaches every worker.
        let mut handles = Vec::new();
        for i in 0..9u64 {
            let listener = Arc::clone(&listener);
            handles.push(std::thread::spawn(move || {
                let cfg = ClientConfig {
                    request_path: Some("/4kb".into()),
                    ..ClientConfig::default()
                };
                run_connection(&listener, &cfg, 40_000 + i, None, Duration::from_secs(60))
                    .expect("connection")
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = cluster.shutdown();
        let stats = &report.workers;
        let total: u64 = stats.iter().map(|(s, _)| s.handshakes).sum();
        let errors: u64 = stats.iter().map(|(s, _)| s.errors).sum();
        assert_eq!(total, 9);
        assert_eq!(errors, 0);
        // Socket conservation: everything dispatched was either
        // accepted by its worker or drained (and counted) at shutdown.
        assert_eq!(report.dispatch.dispatched.iter().sum::<u64>(), 9);
        assert_eq!(report.dispatch.shed, 0);
        assert_eq!(report.undispatched, 0);
        for (i, (s, _)) in stats.iter().enumerate() {
            assert_eq!(
                report.dispatch.dispatched[i] + report.dispatch.stolen_in[i],
                s.accepted + report.dropped_accepts[i] + report.dispatch.stolen_out[i],
                "worker {i}: dispatched sockets must be accepted, stolen, or counted"
            );
        }
        // Stealing is off by default.
        assert_eq!(report.dispatch.stolen_in.iter().sum::<u64>(), 0);
        // Work spread across more than one worker.
        let busy_workers = stats.iter().filter(|(s, _)| s.handshakes > 0).count();
        assert!(busy_workers >= 2, "round-robin accept should spread load");
        // QTLS profile: no kernel switches anywhere.
        assert!(stats.iter().all(|(_, switches)| *switches == 0));
    }

    #[test]
    fn ticket_minted_on_worker_a_resumes_on_worker_b() {
        // The round-robin dispatcher guarantees consecutive connections
        // land on different workers of a 2-worker cluster: the full
        // handshake (and its ticket) goes to worker 0, the reconnect to
        // worker 1. With the cluster-shared resumption plane the second
        // handshake must be abbreviated — no silent full-handshake
        // fallback (resume_miss stays 0 everywhere).
        let directives = parse_ssl_engine_conf("worker_processes 2;").unwrap();
        let cluster = Cluster::start(
            &directives,
            ServerConfig::test_default(),
            Arc::new(ContentStore::new()),
        );
        let listener = cluster.listener();
        let cfg = ClientConfig::default();
        let (resume, resumed, _, _, _) =
            run_connection(&listener, &cfg, 70_000, None, Duration::from_secs(60)).unwrap();
        assert!(!resumed, "first connection is a full handshake");
        let resume = resume.expect("full handshake exports resumption material");
        let (_, resumed, _, _, _) = run_connection(
            &listener,
            &cfg,
            70_001,
            Some(resume),
            Duration::from_secs(60),
        )
        .unwrap();
        assert!(resumed, "cross-worker reconnect must resume abbreviated");
        let store = cluster.session_store();
        let stats = cluster.shutdown().workers;
        assert_eq!(stats.len(), 2);
        // One handshake per worker; the resumed one happened on the
        // worker that did NOT mint the session.
        for (s, _) in &stats {
            assert_eq!(s.handshakes, 1, "dispatcher alternates workers");
        }
        assert_eq!(stats.iter().map(|(s, _)| s.resumed).sum::<u64>(), 1);
        let minted = stats.iter().filter(|(s, _)| s.resumed == 0).count();
        assert_eq!(minted, 1, "resume happened on the other worker");
        assert_eq!(
            stats.iter().map(|(s, _)| s.resume_miss).sum::<u64>(),
            0,
            "shared plane: no silent fallback to full handshakes"
        );
        assert_eq!(stats.iter().map(|(s, _)| s.errors).sum::<u64>(), 0);
        // The shared store served the lookup (session-id or ticket path;
        // the put is recorded either way).
        assert!(store.stats().inserts >= 1);
    }

    #[test]
    fn least_loaded_cluster_with_stealing_conserves_sockets() {
        let directives = parse_ssl_engine_conf(
            r#"
worker_processes 3;
dispatch_policy least_loaded;
dispatch_steal on;
"#,
        )
        .unwrap();
        let cluster = Cluster::start(
            &directives,
            ServerConfig::test_default(),
            Arc::new(ContentStore::new()),
        );
        let listener = cluster.listener();
        let mut handles = Vec::new();
        for i in 0..12u64 {
            let listener = Arc::clone(&listener);
            handles.push(std::thread::spawn(move || {
                let cfg = ClientConfig {
                    request_path: Some("/4kb".into()),
                    ..ClientConfig::default()
                };
                run_connection(&listener, &cfg, 60_000 + i, None, Duration::from_secs(60))
                    .expect("connection")
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = cluster.shutdown();
        let stats = &report.workers;
        assert_eq!(stats.iter().map(|(s, _)| s.handshakes).sum::<u64>(), 12);
        assert_eq!(stats.iter().map(|(s, _)| s.errors).sum::<u64>(), 0);
        // Socket conservation with stealing in the balance: what entered
        // a worker (dispatched + stolen in) equals what left it
        // (accepted + drained at shutdown + stolen away).
        assert_eq!(report.dispatch.dispatched.iter().sum::<u64>(), 12);
        assert_eq!(report.dispatch.shed, 0);
        assert_eq!(report.undispatched, 0);
        for (i, (s, _)) in stats.iter().enumerate() {
            assert_eq!(
                report.dispatch.dispatched[i] + report.dispatch.stolen_in[i],
                s.accepted + report.dropped_accepts[i] + report.dispatch.stolen_out[i],
                "worker {i}: conservation must include steals"
            );
        }
        // Steal traffic balances globally, and the stats counter agrees
        // with the scheduling plane's accounting.
        assert_eq!(
            report.dispatch.stolen_in.iter().sum::<u64>(),
            report.dispatch.stolen_out.iter().sum::<u64>()
        );
        assert_eq!(
            stats.iter().map(|(s, _)| s.steals).sum::<u64>(),
            report.dispatch.stolen_in.iter().sum::<u64>()
        );
    }

    #[test]
    fn full_backlogs_park_on_drain_signal_not_backoff() {
        // One worker with a 2-deep backlog, 8 concurrent clients: the
        // dispatcher keeps finding the lone backlog full. With the old
        // fixed-backoff park it would shed; with the drain signal it
        // parks until the worker accepts and every socket lands.
        let directives = parse_ssl_engine_conf(
            r#"
worker_processes 1;
admission_backlog_cap 2;
"#,
        )
        .unwrap();
        let cluster = Cluster::start(
            &directives,
            ServerConfig::test_default(),
            Arc::new(ContentStore::new()),
        );
        let listener = cluster.listener();
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let listener = Arc::clone(&listener);
            handles.push(std::thread::spawn(move || {
                run_connection(
                    &listener,
                    &ClientConfig::default(),
                    80_000 + i,
                    None,
                    Duration::from_secs(60),
                )
                .expect("connection")
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = cluster.shutdown();
        assert_eq!(
            report
                .workers
                .iter()
                .map(|(s, _)| s.handshakes)
                .sum::<u64>(),
            8,
            "every socket must be served"
        );
        assert_eq!(
            report.dispatch.shed, 0,
            "dispatch latency is bounded by the worker's drain, not shed on a timer"
        );
    }

    #[test]
    fn sw_cluster_without_device() {
        let directives = parse_ssl_engine_conf("worker_processes 2;").unwrap();
        let cluster = Cluster::start(
            &directives,
            ServerConfig::test_default(),
            Arc::new(ContentStore::new()),
        );
        assert!(cluster.device().is_none());
        let listener = cluster.listener();
        let cfg = ClientConfig::default();
        run_connection(&listener, &cfg, 50_000, None, Duration::from_secs(60)).unwrap();
        let stats = cluster.shutdown().workers;
        assert_eq!(stats.iter().map(|(s, _)| s.handshakes).sum::<u64>(), 1);
    }
}
