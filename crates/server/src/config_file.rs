//! The SSL Engine Framework configuration format (artifact appendix
//! §A.7): the paper's extension of Nginx's engine setting into a block
//! in the server configuration file:
//!
//! ```text
//! worker_processes 8;
//! ssl_engine {
//!     use qat_engine;
//!     default_algorithm RSA,EC,DH,PKEY_CRYPTO;
//!     qat_engine {
//!         qat_offload_mode async;
//!         qat_notify_mode poll;
//!         qat_poll_mode heuristic;
//!         qat_heuristic_poll_asym_threshold 48;
//!         qat_heuristic_poll_sym_threshold 24;
//!     }
//! }
//! ```
//!
//! [`parse_ssl_engine_conf`] turns this into an [`EngineDirectives`]
//! bundle (profile, offload selection, thresholds, worker count) that
//! maps directly onto [`crate::worker::WorkerConfig`].

use crate::admission::AdmissionConfig;
use crate::metrics::MetricsConfig;
use crate::sched::DispatchPolicy;
use qtls_core::{FlushMode, FlushPolicyConfig, HeuristicConfig, OffloadProfile, ShardPolicy};
use qtls_tls::provider::OffloadSelection;
use std::time::Duration;

/// Parsed configuration directives.
#[derive(Clone, Debug)]
pub struct EngineDirectives {
    /// `worker_processes N;`
    pub worker_processes: usize,
    /// Derived offload profile.
    pub profile: OffloadProfile,
    /// Which algorithm classes are offloaded (`default_algorithm`).
    pub selection: OffloadSelection,
    /// Heuristic thresholds (`qat_heuristic_poll_*_threshold`).
    pub heuristic: HeuristicConfig,
    /// Timer poll interval (`qat_poll_interval_us`, for timer mode).
    pub timer_interval: Option<Duration>,
    /// Submit flush policy (`qat_submit_flush_*`); applies per shard.
    pub flush: FlushPolicyConfig,
    /// Offload shards per worker (`qat_worker_shards N`); 0 = one per
    /// device endpoint.
    pub worker_shards: usize,
    /// Shard placement policy (`qat_shard_policy`).
    pub shard_policy: ShardPolicy,
    /// Observability plane (`qat_metrics` directive family).
    pub metrics: MetricsConfig,
    /// Hand established connections to the batched record codec
    /// (`qat_record_offload on|off`).
    pub record_offload: bool,
    /// Records per data-plane batch submission
    /// (`qat_record_batch_depth N`).
    pub record_batch_depth: usize,
    /// Shard count for the cluster-shared session/PSK store
    /// (`ssl_session_store_shards N`).
    pub session_store_shards: usize,
    /// Session/ticket lifetime (`ssl_session_timeout N`, seconds).
    pub session_timeout: Duration,
    /// Ticket key rotation interval (`ssl_ticket_key_rotation N`,
    /// seconds; 0 = never rotate).
    pub ticket_rotation: Duration,
    /// Handshake-flood admission control (`admission_*` family).
    pub admission: AdmissionConfig,
    /// How new sockets are routed to workers (`dispatch_policy
    /// round_robin|least_loaded`).
    pub dispatch_policy: DispatchPolicy,
    /// Idle workers steal half of the most-loaded sibling's accept
    /// backlog (`dispatch_steal on|off`).
    pub dispatch_steal: bool,
    /// Runtime migration of quiescent offload shards between device
    /// endpoints (`shard_rebalance on|off`).
    pub shard_rebalance: bool,
    /// Endpoint pressure gap (queued ops) that triggers a rebalance
    /// (`shard_rebalance_threshold N`, N > 0).
    pub shard_rebalance_threshold: u64,
}

impl Default for EngineDirectives {
    fn default() -> Self {
        EngineDirectives {
            worker_processes: 1,
            profile: OffloadProfile::Sw,
            selection: OffloadSelection::default(),
            heuristic: HeuristicConfig::default(),
            timer_interval: None,
            flush: FlushPolicyConfig::adaptive(),
            worker_shards: 0,
            shard_policy: ShardPolicy::default(),
            metrics: MetricsConfig::default(),
            record_offload: true,
            record_batch_depth: qtls_tls::record::RecordCodec::DEFAULT_BATCH,
            session_store_shards: 8,
            session_timeout: Duration::from_secs(3600),
            ticket_rotation: Duration::ZERO,
            admission: AdmissionConfig::default(),
            dispatch_policy: DispatchPolicy::RoundRobin,
            dispatch_steal: false,
            shard_rebalance: false,
            shard_rebalance_threshold: 16,
        }
    }
}

/// Configuration parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfError {
    /// Unbalanced `{`/`}`.
    UnbalancedBraces,
    /// A directive was malformed.
    BadDirective(String),
    /// A directive had an invalid value.
    BadValue(String),
}

impl std::fmt::Display for ConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfError::UnbalancedBraces => f.write_str("unbalanced braces"),
            ConfError::BadDirective(d) => write!(f, "bad directive: {d}"),
            ConfError::BadValue(d) => write!(f, "bad value in: {d}"),
        }
    }
}

impl std::error::Error for ConfError {}

/// Strip `#` comments, split into `;`-terminated directives and brace
/// tokens.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for line in input.lines() {
        let line = line.split('#').next().unwrap_or("");
        for ch in line.chars() {
            match ch {
                ';' => {
                    let t = current.trim();
                    if !t.is_empty() {
                        tokens.push(t.to_string());
                    }
                    current.clear();
                }
                '{' | '}' => {
                    let t = current.trim();
                    if !t.is_empty() {
                        tokens.push(t.to_string());
                    }
                    current.clear();
                    tokens.push(ch.to_string());
                }
                _ => current.push(ch),
            }
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        tokens.push(current.trim().to_string());
    }
    tokens
}

/// Parse an Nginx-style configuration with the `ssl_engine` block.
pub fn parse_ssl_engine_conf(input: &str) -> Result<EngineDirectives, ConfError> {
    let mut out = EngineDirectives::default();
    let mut depth = 0usize;
    let mut use_engine = false;
    let mut offload_async = false;
    let mut poll_heuristic = true;
    let mut notify_bypass = true;

    for token in tokenize(input) {
        match token.as_str() {
            "{" => {
                depth += 1;
                continue;
            }
            "}" => {
                depth = depth.checked_sub(1).ok_or(ConfError::UnbalancedBraces)?;
                continue;
            }
            _ => {}
        }
        let mut parts = token.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| ConfError::BadDirective(token.clone()))?;
        let value = parts.collect::<Vec<_>>().join(" ");
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| ConfError::BadValue(token.clone()))
        };
        match name {
            "worker_processes" => {
                out.worker_processes = parse_u64(&value)? as usize;
                if out.worker_processes == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
            }
            "load_module"
            | "events"
            | "http"
            | "server"
            | "listen"
            | "ssl_certificate"
            | "ssl_certificate_key"
            | "keepalive_timeout"
            | "ssl_session_cache"
            | "ssl_session_tickets" => {
                // Recognized-but-ignored standard directives.
            }
            "ssl_engine" | "qat_engine" if value.is_empty() => {
                // Block openers; the `{` token follows.
            }
            "use" => {
                use_engine = value == "qat_engine";
                if !use_engine {
                    return Err(ConfError::BadValue(token.clone()));
                }
            }
            "default_algorithm" => {
                let mut sel = OffloadSelection {
                    asym: false,
                    prf: false,
                    cipher: false,
                };
                for alg in value.split(',') {
                    match alg.trim() {
                        "RSA" | "EC" | "DH" => sel.asym = true,
                        "PKEY_CRYPTO" | "PRF" => sel.prf = true,
                        "CIPHERS" | "CIPHER" => sel.cipher = true,
                        "ALL" => {
                            sel = OffloadSelection {
                                asym: true,
                                prf: true,
                                cipher: true,
                            }
                        }
                        "" => {}
                        _ => return Err(ConfError::BadValue(token.clone())),
                    }
                }
                out.selection = sel;
            }
            "qat_offload_mode" => match value.as_str() {
                "async" => offload_async = true,
                "sync" => offload_async = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_notify_mode" => match value.as_str() {
                // `poll` = kernel-bypass (the async queue); `event` = FD.
                "poll" => notify_bypass = true,
                "event" => notify_bypass = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_poll_mode" => match value.as_str() {
                "heuristic" => poll_heuristic = true,
                "timer" => poll_heuristic = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_poll_interval_us" => {
                out.timer_interval = Some(Duration::from_micros(parse_u64(&value)?));
            }
            "qat_heuristic_poll_asym_threshold" => {
                out.heuristic.asym_threshold = parse_u64(&value)?;
            }
            "qat_heuristic_poll_sym_threshold" => {
                out.heuristic.sym_threshold = parse_u64(&value)?;
            }
            "qat_submit_flush_mode" => match value.as_str() {
                "adaptive" => out.flush.mode = FlushMode::Adaptive,
                "eager" => out.flush = FlushPolicyConfig::eager(),
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_submit_flush_target_depth" => {
                let depth = parse_u64(&value)? as usize;
                if depth == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.flush.target_depth = depth;
            }
            "qat_submit_flush_max_hold_sweeps" => {
                out.flush.max_hold_sweeps = parse_u64(&value)? as u32;
            }
            "qat_submit_flush_max_hold_us" => {
                out.flush.max_hold = Duration::from_micros(parse_u64(&value)?);
            }
            "qat_submit_flush_light_inflight" => {
                out.flush.light_inflight = parse_u64(&value)?;
            }
            "qat_submit_flush_bypass" => match value.as_str() {
                "on" => out.flush.bypass = true,
                "off" => out.flush.bypass = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_worker_shards" => {
                // 0 is the "auto" spelling: one shard per device endpoint.
                out.worker_shards = parse_u64(&value)? as usize;
            }
            "qat_shard_policy" => {
                out.shard_policy = ShardPolicy::from_name(&value)
                    .ok_or_else(|| ConfError::BadValue(token.clone()))?;
            }
            "qat_record_offload" => match value.as_str() {
                "on" => out.record_offload = true,
                "off" => out.record_offload = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_record_batch_depth" => {
                let depth = parse_u64(&value)? as usize;
                if depth == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.record_batch_depth = depth;
            }
            "ssl_session_store_shards" => {
                let shards = parse_u64(&value)? as usize;
                if shards == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.session_store_shards = shards;
            }
            "ssl_session_timeout" => {
                out.session_timeout = Duration::from_secs(parse_u64(&value)?);
            }
            "ssl_ticket_key_rotation" => {
                out.ticket_rotation = Duration::from_secs(parse_u64(&value)?);
            }
            "admission_control" => match value.as_str() {
                "on" => out.admission.enabled = true,
                "off" => out.admission.enabled = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "admission_watermark" => {
                let mark = parse_u64(&value)?;
                if mark == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.admission.watermark = mark;
            }
            "admission_accepts_per_sweep" => {
                let n = parse_u64(&value)? as usize;
                if n == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.admission.accepts_per_sweep = n;
            }
            "admission_backlog_cap" => {
                let cap = parse_u64(&value)? as usize;
                if cap == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.admission.backlog_cap = cap;
            }
            "admission_token_lifetime" => {
                let secs = parse_u64(&value)?;
                if secs == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.admission.token_lifetime = Duration::from_secs(secs);
            }
            "dispatch_policy" => match value.as_str() {
                "round_robin" => out.dispatch_policy = DispatchPolicy::RoundRobin,
                "least_loaded" => out.dispatch_policy = DispatchPolicy::LeastLoaded,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "dispatch_steal" => match value.as_str() {
                "on" => out.dispatch_steal = true,
                "off" => out.dispatch_steal = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "shard_rebalance" => match value.as_str() {
                "on" => out.shard_rebalance = true,
                "off" => out.shard_rebalance = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "shard_rebalance_threshold" => {
                let gap = parse_u64(&value)?;
                if gap == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.shard_rebalance_threshold = gap;
            }
            "qat_metrics" => match value.as_str() {
                "on" => out.metrics.enabled = true,
                "off" => out.metrics.enabled = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            "qat_metrics_anomaly_p99_us" => {
                out.metrics.anomaly_p99_us = parse_u64(&value)?;
            }
            "qat_metrics_flight_capacity" => {
                let capacity = parse_u64(&value)? as usize;
                if capacity == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.metrics.flight_capacity = capacity;
            }
            "qat_anomaly_interval_ms" => {
                let interval = parse_u64(&value)?;
                if interval == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.metrics.anomaly_interval_ms = interval;
            }
            "trace_sample_rate" => {
                out.metrics.trace_sample_rate = parse_u64(&value)?;
            }
            "trace_buffer_spans" => {
                let spans = parse_u64(&value)? as usize;
                if spans == 0 {
                    return Err(ConfError::BadValue(token.clone()));
                }
                out.metrics.trace_buffer_spans = spans;
            }
            "trace_export" => match value.as_str() {
                "on" => out.metrics.trace_export = true,
                "off" => out.metrics.trace_export = false,
                _ => return Err(ConfError::BadValue(token.clone())),
            },
            _ => return Err(ConfError::BadDirective(token.clone())),
        }
    }
    if depth != 0 {
        return Err(ConfError::UnbalancedBraces);
    }
    out.profile = match (use_engine, offload_async, poll_heuristic, notify_bypass) {
        (false, ..) => OffloadProfile::Sw,
        (true, false, ..) => OffloadProfile::QatS,
        (true, true, false, _) => OffloadProfile::QatA,
        (true, true, true, false) => OffloadProfile::QatAH,
        (true, true, true, true) => OffloadProfile::Qtls,
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPENDIX_EXAMPLE: &str = r#"
worker_processes 8;
load_module modules/ngx_ssl_engine_qat_module.so;
ssl_engine {
    use qat_engine;
    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;
        qat_poll_mode heuristic;
        qat_heuristic_poll_asym_threshold 48;
        qat_heuristic_poll_sym_threshold 24;
    }
}
"#;

    #[test]
    fn parses_the_artifact_appendix_example() {
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert_eq!(d.worker_processes, 8);
        assert_eq!(d.profile, OffloadProfile::Qtls);
        assert!(d.selection.asym);
        assert!(d.selection.prf);
        assert!(!d.selection.cipher, "CIPHERS not listed");
        assert_eq!(d.heuristic.asym_threshold, 48);
        assert_eq!(d.heuristic.sym_threshold, 24);
    }

    #[test]
    fn sync_mode_maps_to_straight_offload() {
        let conf = r#"
worker_processes 4;
ssl_engine {
    use qat_engine;
    qat_engine { qat_offload_mode sync; }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.profile, OffloadProfile::QatS);
    }

    #[test]
    fn timer_polling_maps_to_qat_a() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_poll_mode timer;
        qat_poll_interval_us 10;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.profile, OffloadProfile::QatA);
        assert_eq!(d.timer_interval, Some(Duration::from_micros(10)));
    }

    #[test]
    fn fd_notification_maps_to_qat_ah() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_poll_mode heuristic;
        qat_notify_mode event;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.profile, OffloadProfile::QatAH);
    }

    #[test]
    fn no_engine_block_means_sw() {
        let d = parse_ssl_engine_conf("worker_processes 2;").unwrap();
        assert_eq!(d.profile, OffloadProfile::Sw);
        assert_eq!(d.worker_processes, 2);
    }

    #[test]
    fn comments_are_ignored() {
        let conf = "worker_processes 3; # the number of HT cores\n";
        assert_eq!(parse_ssl_engine_conf(conf).unwrap().worker_processes, 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_ssl_engine_conf("ssl_engine {"),
            Err(ConfError::UnbalancedBraces)
        ));
        assert!(matches!(
            parse_ssl_engine_conf("nonsense_directive on;"),
            Err(ConfError::BadDirective(_))
        ));
        assert!(matches!(
            parse_ssl_engine_conf("worker_processes many;"),
            Err(ConfError::BadValue(_))
        ));
        assert!(matches!(
            parse_ssl_engine_conf("worker_processes 0;"),
            Err(ConfError::BadValue(_))
        ));
        assert!(matches!(
            parse_ssl_engine_conf("ssl_engine { use openssl_default; }"),
            Err(ConfError::BadValue(_))
        ));
    }

    #[test]
    fn submit_flush_directives_parse() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_submit_flush_mode adaptive;
        qat_submit_flush_target_depth 32;
        qat_submit_flush_max_hold_sweeps 5;
        qat_submit_flush_max_hold_us 150;
        qat_submit_flush_light_inflight 8;
        qat_submit_flush_bypass on;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.flush.mode, FlushMode::Adaptive);
        assert_eq!(d.flush.target_depth, 32);
        assert_eq!(d.flush.max_hold_sweeps, 5);
        assert_eq!(d.flush.max_hold, Duration::from_micros(150));
        assert_eq!(d.flush.light_inflight, 8);
        assert!(d.flush.bypass);
    }

    #[test]
    fn submit_flush_eager_mode_resets_policy() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_submit_flush_mode eager;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.flush.mode, FlushMode::Eager);
        assert_eq!(d.flush, FlushPolicyConfig::eager());
    }

    #[test]
    fn submit_flush_rejects_bad_values() {
        for bad in [
            "ssl_engine { use qat_engine; qat_engine { qat_submit_flush_mode sometimes; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_submit_flush_target_depth 0; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_submit_flush_bypass maybe; } }",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn sharding_directives_parse() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_worker_shards 4;
        qat_shard_policy least_inflight;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.worker_shards, 4);
        assert_eq!(d.shard_policy, ShardPolicy::LeastInflight);
        // Defaults: auto shard count, round-robin placement.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert_eq!(d.worker_shards, 0);
        assert_eq!(d.shard_policy, ShardPolicy::RoundRobin);
    }

    #[test]
    fn sharding_rejects_bad_policy() {
        let bad = "ssl_engine { use qat_engine; qat_engine { qat_shard_policy fastest_first; } }";
        assert!(matches!(
            parse_ssl_engine_conf(bad),
            Err(ConfError::BadValue(_))
        ));
        let bad = "ssl_engine { use qat_engine; qat_engine { qat_worker_shards lots; } }";
        assert!(matches!(
            parse_ssl_engine_conf(bad),
            Err(ConfError::BadValue(_))
        ));
    }

    #[test]
    fn record_plane_directives_parse() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_record_offload off;
        qat_record_batch_depth 32;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert!(!d.record_offload);
        assert_eq!(d.record_batch_depth, 32);
        // Defaults: data plane on, codec default batch depth.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert!(d.record_offload);
        assert_eq!(
            d.record_batch_depth,
            qtls_tls::record::RecordCodec::DEFAULT_BATCH
        );
    }

    #[test]
    fn record_plane_rejects_bad_values() {
        for bad in [
            "ssl_engine { use qat_engine; qat_engine { qat_record_offload maybe; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_record_batch_depth 0; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_record_batch_depth deep; } }",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn metrics_directives_parse() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    qat_engine {
        qat_offload_mode async;
        qat_metrics on;
        qat_metrics_anomaly_p99_us 5000;
        qat_metrics_flight_capacity 512;
        qat_anomaly_interval_ms 20;
        trace_sample_rate 64;
        trace_buffer_spans 8192;
        trace_export off;
    }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert!(d.metrics.enabled);
        assert_eq!(d.metrics.anomaly_p99_us, 5000);
        assert_eq!(d.metrics.flight_capacity, 512);
        assert_eq!(d.metrics.anomaly_interval_ms, 20);
        assert_eq!(d.metrics.trace_sample_rate, 64);
        assert_eq!(d.metrics.trace_buffer_spans, 8192);
        assert!(!d.metrics.trace_export);
        // Defaults: off, no anomaly threshold, default ring capacity,
        // tracing off with export allowed.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert!(!d.metrics.enabled);
        assert_eq!(d.metrics.anomaly_p99_us, 0);
        assert_eq!(
            d.metrics.flight_capacity,
            qtls_core::obs::FLIGHT_CAPACITY_DEFAULT
        );
        assert_eq!(
            d.metrics.anomaly_interval_ms,
            crate::metrics::ANOMALY_INTERVAL_MS_DEFAULT
        );
        assert_eq!(d.metrics.trace_sample_rate, 0);
        assert_eq!(
            d.metrics.trace_buffer_spans,
            qtls_core::obs::TRACE_BUFFER_SPANS_DEFAULT
        );
        assert!(d.metrics.trace_export);
    }

    #[test]
    fn metrics_rejects_bad_values() {
        for bad in [
            "ssl_engine { use qat_engine; qat_engine { qat_metrics maybe; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_metrics_flight_capacity 0; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_metrics_anomaly_p99_us soon; } }",
            "ssl_engine { use qat_engine; qat_engine { qat_anomaly_interval_ms 0; } }",
            "ssl_engine { use qat_engine; qat_engine { trace_sample_rate often; } }",
            "ssl_engine { use qat_engine; qat_engine { trace_buffer_spans 0; } }",
            "ssl_engine { use qat_engine; qat_engine { trace_export maybe; } }",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn resumption_directives_parse() {
        let conf = r#"
worker_processes 2;
ssl_session_store_shards 16;
ssl_session_timeout 300;
ssl_ticket_key_rotation 86400;
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.session_store_shards, 16);
        assert_eq!(d.session_timeout, Duration::from_secs(300));
        assert_eq!(d.ticket_rotation, Duration::from_secs(86400));
        // Defaults: 8 shards, 1h lifetime, no rotation.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert_eq!(d.session_store_shards, 8);
        assert_eq!(d.session_timeout, Duration::from_secs(3600));
        assert_eq!(d.ticket_rotation, Duration::ZERO);
    }

    #[test]
    fn resumption_rejects_bad_values() {
        for bad in [
            "ssl_session_store_shards 0;",
            "ssl_session_store_shards many;",
            "ssl_session_timeout forever;",
            "ssl_ticket_key_rotation weekly;",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn admission_directives_parse() {
        let conf = r#"
worker_processes 2;
admission_control on;
admission_watermark 32;
admission_accepts_per_sweep 16;
admission_backlog_cap 1024;
admission_token_lifetime 10;
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert!(d.admission.enabled);
        assert_eq!(d.admission.watermark, 32);
        assert_eq!(d.admission.accepts_per_sweep, 16);
        assert_eq!(d.admission.backlog_cap, 1024);
        assert_eq!(d.admission.token_lifetime, Duration::from_secs(10));
        // Defaults: off, watermark 64, 64 accepts/sweep, listener
        // default backlog, 30 s tokens.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert!(!d.admission.enabled);
        assert_eq!(d.admission.watermark, 64);
        assert_eq!(d.admission.accepts_per_sweep, 64);
        assert_eq!(d.admission.backlog_cap, crate::net::DEFAULT_BACKLOG);
        assert_eq!(d.admission.token_lifetime, Duration::from_secs(30));
    }

    #[test]
    fn admission_rejects_bad_values() {
        for bad in [
            "admission_control maybe;",
            "admission_watermark 0;",
            "admission_watermark deep;",
            "admission_accepts_per_sweep 0;",
            "admission_backlog_cap 0;",
            "admission_token_lifetime 0;",
            "admission_token_lifetime soon;",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn scheduling_directives_parse() {
        let conf = r#"
worker_processes 4;
dispatch_policy least_loaded;
dispatch_steal on;
shard_rebalance on;
shard_rebalance_threshold 32;
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert_eq!(d.dispatch_policy, DispatchPolicy::LeastLoaded);
        assert!(d.dispatch_steal);
        assert!(d.shard_rebalance);
        assert_eq!(d.shard_rebalance_threshold, 32);
        // Defaults: blind round-robin, no stealing, no rebalancing.
        let d = parse_ssl_engine_conf(APPENDIX_EXAMPLE).unwrap();
        assert_eq!(d.dispatch_policy, DispatchPolicy::RoundRobin);
        assert!(!d.dispatch_steal);
        assert!(!d.shard_rebalance);
        assert_eq!(d.shard_rebalance_threshold, 16);
    }

    #[test]
    fn scheduling_rejects_bad_values() {
        for bad in [
            "dispatch_policy fastest;",
            "dispatch_steal maybe;",
            "shard_rebalance sometimes;",
            "shard_rebalance_threshold 0;",
            "shard_rebalance_threshold wide;",
        ] {
            assert!(
                matches!(parse_ssl_engine_conf(bad), Err(ConfError::BadValue(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn all_algorithms_keyword() {
        let conf = r#"
ssl_engine {
    use qat_engine;
    default_algorithm ALL;
    qat_engine { qat_offload_mode async; }
}
"#;
        let d = parse_ssl_engine_conf(conf).unwrap();
        assert!(d.selection.asym && d.selection.prf && d.selection.cipher);
    }
}
