//! Closed-loop load generators — the `openssl s_time` and ApacheBench
//! roles of the paper's client servers, over the in-memory network.
//! Includes a `--flood` mode: clients that hammer full ClientHellos
//! (no resumption, no keep-alive) and understand the admission plane's
//! retry-token challenges, for exercising handshake-flood overload.

use crate::admission::{self, FrameParse};
use crate::net::{SockError, VListener, VSocket};
use qtls_crypto::ecc::NamedCurve;
use qtls_tls::client::{ClientSession, ResumeData};
use qtls_tls::provider::CryptoProvider;
use qtls_tls::suite::{CipherSuite, Version};
use qtls_tls::tls13::{Tls13ClientSession, Tls13ResumeData};
use qtls_tls::TlsError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generation parameters for one client stream.
#[derive(Clone)]
pub struct ClientConfig {
    /// Cipher suite to offer.
    pub suite: CipherSuite,
    /// Curve to offer.
    pub curve: NamedCurve,
    /// Path to GET after the handshake (None = handshake-only, like
    /// `s_time` against a closed page).
    pub request_path: Option<String>,
    /// Keep-alive requests per connection (1 = close after first).
    pub requests_per_conn: usize,
    /// Attempt session resumption on subsequent connections (the
    /// `s_time -reuse` flag / Fig. 9 workloads). The value is the number
    /// of abbreviated handshakes per full handshake (e.g. 9 for the 1:9
    /// mixture); 0 disables resumption.
    pub resumes_per_full: usize,
    /// `--resume-fraction`: target fraction of connections that attempt
    /// resumption (0.0 disables; 0.9 ≈ nine resumes per full). Takes
    /// precedence over `resumes_per_full` when non-zero; paced with a
    /// fractional accumulator so the mixture holds at any stream length.
    pub resume_fraction: f64,
    /// Protocol version the generated clients speak.
    pub version: Version,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            suite: CipherSuite::EcdheRsa,
            curve: NamedCurve::P256,
            request_path: None,
            requests_per_conn: 1,
            resumes_per_full: 0,
            resume_fraction: 0.0,
            version: Version::Tls12,
        }
    }
}

impl ClientConfig {
    /// Bulk-transfer mode: keep-alive GETs of one large object per
    /// connection, amortizing the handshake so the measurement is the
    /// record data plane (the paper's Fig. 10 transfer workloads).
    pub fn bulk(path: &str, requests_per_conn: usize) -> Self {
        ClientConfig {
            request_path: Some(path.to_string()),
            requests_per_conn: requests_per_conn.max(1),
            ..ClientConfig::default()
        }
    }
}

/// Aggregate results across all client streams.
#[derive(Debug, Default)]
pub struct LoadStats {
    /// Completed connections (handshakes).
    pub connections: AtomicU64,
    /// Of which resumed.
    pub resumed: AtomicU64,
    /// HTTP responses fully received.
    pub responses: AtomicU64,
    /// Response body bytes received.
    pub body_bytes: AtomicU64,
    /// Request bytes sent (application plaintext, pre-encryption).
    pub bytes_sent: AtomicU64,
    /// Errors.
    pub errors: AtomicU64,
    /// Total connection latency in microseconds (for averaging).
    pub latency_us_total: AtomicU64,
}

impl LoadStats {
    /// Average time from connect to connection completion.
    pub fn avg_latency(&self) -> Duration {
        let n = self.connections.load(Ordering::Relaxed).max(1);
        Duration::from_micros(self.latency_us_total.load(Ordering::Relaxed) / n)
    }

    /// Application-payload throughput over `elapsed`, in GB/s (both
    /// directions: response bodies received plus request bytes sent).
    pub fn gb_per_sec(&self, elapsed: Duration) -> f64 {
        let bytes =
            self.body_bytes.load(Ordering::Relaxed) + self.bytes_sent.load(Ordering::Relaxed);
        bytes as f64 / elapsed.as_secs_f64().max(1e-9) / 1e9
    }

    /// One-line summary with the throughput column — the ApacheBench
    /// "Transfer rate" role for bulk-transfer runs.
    pub fn summary(&self, elapsed: Duration) -> String {
        format!(
            "conns {} resumed {} resp {} bytes-in {} bytes-out {} errors {} \
             avg-lat {:?} | {:.3} GB/s",
            self.connections.load(Ordering::Relaxed),
            self.resumed.load(Ordering::Relaxed),
            self.responses.load(Ordering::Relaxed),
            self.body_bytes.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.avg_latency(),
            self.gb_per_sec(elapsed),
        )
    }
}

/// Errors a client stream can hit.
#[derive(Debug)]
pub enum ClientError {
    /// TLS failure.
    Tls(TlsError),
    /// Transport failure.
    Sock(SockError),
    /// Server never answered.
    Timeout,
    /// Response was malformed.
    BadResponse(&'static str),
    /// Filesystem failure writing a run artifact.
    Io(std::io::Error),
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<TlsError> for ClientError {
    fn from(e: TlsError) -> Self {
        ClientError::Tls(e)
    }
}

/// Pump a client session against a socket until `done` says stop.
fn pump_until(
    session: &mut ClientSession,
    sock: &VSocket,
    deadline: Instant,
    mut done: impl FnMut(&mut ClientSession) -> bool,
) -> Result<(), ClientError> {
    loop {
        let out = session.take_output();
        if !out.is_empty() {
            sock.write(&out).map_err(ClientError::Sock)?;
        }
        match sock.read_all() {
            Ok(bytes) => {
                session.feed(&bytes);
                session.process()?;
            }
            Err(SockError::WouldBlock) => {}
            Err(SockError::Closed) => return Err(ClientError::Sock(SockError::Closed)),
        }
        if done(session) {
            // Flush any remaining output (e.g. the final Finished).
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(ClientError::Timeout);
        }
        std::thread::yield_now();
    }
}

/// Incremental view of the HTTP response accumulating in the receive
/// buffer. Distinguishes "headers not complete yet, keep reading" from
/// "headers can never parse" — collapsing both into `None` made the
/// client spin on a malformed response until the 30 s timeout, and the
/// downstream `unwrap()` re-parse panicked on buffers that were drained
/// between reads.
enum ResponseProgress {
    /// Header terminator not seen yet — accumulate more bytes.
    Incomplete,
    /// Headers parsed; the full response spans `total_len` bytes of
    /// which the first `header_len` are headers.
    Complete {
        /// Byte length of the status line + headers + terminator.
        header_len: usize,
        /// `header_len` + Content-Length.
        total_len: usize,
    },
    /// Headers are complete but unparsable; reading more cannot help.
    Malformed(&'static str),
}

/// Parse as much of a response as the buffer holds.
fn response_progress(buf: &[u8]) -> ResponseProgress {
    let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return ResponseProgress::Incomplete;
    };
    let end = pos + 4;
    let Ok(head) = std::str::from_utf8(&buf[..end]) else {
        return ResponseProgress::Malformed("response headers are not UTF-8");
    };
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                return match value.trim().parse::<usize>() {
                    Ok(len) => ResponseProgress::Complete {
                        header_len: end,
                        total_len: end + len,
                    },
                    Err(_) => ResponseProgress::Malformed("unparsable Content-Length"),
                };
            }
        }
    }
    ResponseProgress::Complete {
        header_len: end,
        total_len: end,
    }
}

/// Run one TLS 1.3 connection: handshake (optionally offering PSK
/// resumption from a prior connection's exported data), optional single
/// request, close. Returns `(resume_out, resumed, responses,
/// body_bytes, req_bytes)` — mirroring [`run_connection`] so mixed-
/// version load loops can thread resumption state uniformly.
pub fn run_connection_tls13(
    listener: &VListener,
    cfg: &ClientConfig,
    seed: u64,
    resume: Option<Tls13ResumeData>,
    timeout: Duration,
) -> Result<(Option<Tls13ResumeData>, bool, u64, u64, u64), ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect();
    let mut session = Tls13ClientSession::new_resuming(
        CryptoProvider::Software,
        cfg.suite,
        cfg.curve,
        resume,
        seed,
    );
    session.start()?;
    let pump13 = |session: &mut Tls13ClientSession,
                  done: &mut dyn FnMut(&mut Tls13ClientSession) -> bool|
     -> Result<(), ClientError> {
        loop {
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            match sock.read_all() {
                Ok(bytes) => {
                    session.feed(&bytes);
                    session.process()?;
                }
                Err(SockError::WouldBlock) => {}
                Err(SockError::Closed) => return Err(ClientError::Sock(SockError::Closed)),
            }
            if done(session) {
                let out = session.take_output();
                if !out.is_empty() {
                    sock.write(&out).map_err(ClientError::Sock)?;
                }
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::yield_now();
        }
    };
    pump13(&mut session, &mut |s| s.is_established())?;
    let resumed = session.was_resumed();
    let mut responses = 0u64;
    let mut body_bytes = 0u64;
    let mut req_bytes = 0u64;
    if let Some(path) = &cfg.request_path {
        let req = format!("GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: close\r\n\r\n");
        req_bytes += req.len() as u64;
        session.write_app_data(req.as_bytes())?;
        let mut resp_buf: Vec<u8> = Vec::new();
        let mut needed: Option<(usize, usize)> = None; // (total, header)
        let mut malformed: Option<&'static str> = None;
        pump13(&mut session, &mut |s| {
            while let Some(chunk) = s.read_app_data() {
                resp_buf.extend_from_slice(&chunk);
            }
            if needed.is_none() {
                match response_progress(&resp_buf) {
                    ResponseProgress::Incomplete => {}
                    ResponseProgress::Complete {
                        header_len,
                        total_len,
                    } => needed = Some((total_len, header_len)),
                    ResponseProgress::Malformed(why) => {
                        malformed = Some(why);
                        return true;
                    }
                }
            }
            needed.is_some_and(|(total, _)| resp_buf.len() >= total)
        })?;
        if let Some(why) = malformed {
            return Err(ClientError::BadResponse(why));
        }
        let (total, header_len) =
            needed.ok_or(ClientError::BadResponse("response never completed"))?;
        body_bytes += (total - header_len) as u64;
        responses += 1;
    } else if cfg.resumes_per_full > 0 || cfg.resume_fraction > 0.0 {
        // Handshake-only stream that wants resumption material: give the
        // server's NewSessionTicket (sent right after its Finished) a
        // bounded grace period to arrive. A server that never issues
        // tickets must not stall the stream for the connection timeout.
        let nst_deadline = Instant::now() + Duration::from_millis(500);
        while session.export_resume_data().is_none() && Instant::now() < nst_deadline {
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            match sock.read_all() {
                Ok(bytes) => {
                    session.feed(&bytes);
                    session.process()?;
                }
                Err(SockError::WouldBlock) => {}
                Err(SockError::Closed) => break,
            }
            std::thread::yield_now();
        }
    }
    let resume_out = session.export_resume_data();
    sock.close();
    Ok((resume_out, resumed, responses, body_bytes, req_bytes))
}

/// Run one connection: handshake, optional requests, close.
/// Returns resumption material for the next connection.
pub fn run_connection(
    listener: &VListener,
    cfg: &ClientConfig,
    seed: u64,
    resume: Option<ResumeData>,
    timeout: Duration,
) -> Result<(Option<ResumeData>, bool, u64, u64, u64), ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect();
    let mut session =
        ClientSession::new(CryptoProvider::Software, cfg.suite, cfg.curve, resume, seed);
    session.start()?;
    pump_until(&mut session, &sock, deadline, |s| s.is_established())?;
    let resumed = session.was_resumed();
    let mut responses = 0u64;
    let mut body_bytes = 0u64;
    let mut req_bytes = 0u64;
    if let Some(path) = &cfg.request_path {
        let mut resp_buf: Vec<u8> = Vec::new();
        for i in 0..cfg.requests_per_conn {
            let keep = i + 1 < cfg.requests_per_conn;
            let req = format!(
                "GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: {}\r\n\r\n",
                if keep { "keep-alive" } else { "close" }
            );
            req_bytes += req.len() as u64;
            session.write_app_data(req.as_bytes())?;
            // Read until a complete response is buffered.
            let mut needed: Option<(usize, usize)> = None; // (total, header)
            let mut malformed: Option<&'static str> = None;
            pump_until(&mut session, &sock, deadline, |s| {
                while let Some(chunk) = s.read_app_data() {
                    resp_buf.extend_from_slice(&chunk);
                }
                if needed.is_none() {
                    match response_progress(&resp_buf) {
                        ResponseProgress::Incomplete => {}
                        ResponseProgress::Complete {
                            header_len,
                            total_len,
                        } => needed = Some((total_len, header_len)),
                        ResponseProgress::Malformed(why) => {
                            malformed = Some(why);
                            return true;
                        }
                    }
                }
                needed.is_some_and(|(total, _)| resp_buf.len() >= total)
            })?;
            if let Some(why) = malformed {
                return Err(ClientError::BadResponse(why));
            }
            let (total, header_len) =
                needed.ok_or(ClientError::BadResponse("response never completed"))?;
            body_bytes += (total - header_len) as u64;
            resp_buf.drain(..total);
            responses += 1;
        }
    }
    let resume_out = session.export_resume_data();
    sock.close();
    Ok((resume_out, resumed, responses, body_bytes, req_bytes))
}

/// Outcome of one flood-mode connection attempt.
#[derive(Debug)]
pub enum FloodOutcome {
    /// The handshake completed. `challenged` says whether it first had
    /// to round-trip a retry token (admission was in overload).
    Completed {
        /// The server challenged and this client retried with a token.
        challenged: bool,
    },
    /// Challenged and gave up — the behaviour of a flooder that never
    /// honors retry tokens (or spoofs addresses and cannot).
    Challenged,
}

/// Aggregate results across flood clients.
#[derive(Debug, Default)]
pub struct FloodStats {
    /// Connection attempts made.
    pub attempts: AtomicU64,
    /// Attempts the server answered with a retry-token challenge.
    pub challenged: AtomicU64,
    /// Attempts that completed a handshake (directly or after retry).
    pub admitted: AtomicU64,
    /// Errors (including connections shed at a full backlog).
    pub errors: AtomicU64,
}

/// Pump a handshake while watching the first bytes for an admission
/// challenge frame. Returns `Some(token)` when the server challenged,
/// `None` once the handshake completes.
fn flood_handshake(
    sock: &VSocket,
    session: &mut ClientSession,
    deadline: Instant,
) -> Result<Option<Vec<u8>>, ClientError> {
    let mut raw: Vec<u8> = Vec::new();
    let mut classified = false; // first bytes proved to be raw TLS
    loop {
        let out = session.take_output();
        if !out.is_empty() {
            sock.write(&out).map_err(ClientError::Sock)?;
        }
        let closed = match sock.read_all() {
            Ok(bytes) => {
                raw.extend_from_slice(&bytes);
                false
            }
            Err(SockError::WouldBlock) => false,
            Err(SockError::Closed) => true,
        };
        if classified {
            if !raw.is_empty() {
                session.feed(&raw);
                raw.clear();
                session.process()?;
            }
        } else if !raw.is_empty() {
            match admission::parse_frame(&raw) {
                FrameParse::Frame {
                    kind: admission::FRAME_CHALLENGE,
                    token,
                    ..
                } => return Ok(Some(token)),
                FrameParse::NotAFrame => {
                    classified = true;
                    session.feed(&raw);
                    raw.clear();
                    session.process()?;
                }
                FrameParse::Incomplete => {}
                FrameParse::Frame { .. } | FrameParse::Malformed => {
                    return Err(ClientError::BadResponse("unexpected admission frame"));
                }
            }
        }
        if session.is_established() {
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            return Ok(None);
        }
        if closed {
            // The server closed without a (complete) challenge: shed at
            // the backlog, or mid-handshake failure.
            return Err(ClientError::Sock(SockError::Closed));
        }
        if Instant::now() > deadline {
            return Err(ClientError::Timeout);
        }
        std::thread::yield_now();
    }
}

/// Run one flood-mode connection from declared address `addr`: a full
/// handshake attempt (no resumption, no keep-alive) that understands
/// retry-token challenges. `honor_retry` = reconnect presenting the
/// token (a legitimate client); a flooder passes `false` and gives up.
pub fn run_flood_connection(
    listener: &VListener,
    cfg: &ClientConfig,
    seed: u64,
    addr: u64,
    honor_retry: bool,
    timeout: Duration,
) -> Result<FloodOutcome, ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect_from(addr);
    let mut session =
        ClientSession::new(CryptoProvider::Software, cfg.suite, cfg.curve, None, seed);
    session.start()?;
    let challenge = flood_handshake(&sock, &mut session, deadline)?;
    sock.close();
    let Some(token) = challenge else {
        return Ok(FloodOutcome::Completed { challenged: false });
    };
    if !honor_retry {
        return Ok(FloodOutcome::Challenged);
    }
    // Legitimate retry: reconnect from the same address, presenting the
    // token in front of the fresh ClientHello in one write.
    let sock = listener.connect_from(addr);
    let mut session = ClientSession::new(
        CryptoProvider::Software,
        cfg.suite,
        cfg.curve,
        None,
        seed | (1 << 63),
    );
    session.start()?;
    let mut first = admission::token_frame(&token);
    first.extend_from_slice(&session.take_output());
    sock.write(&first).map_err(ClientError::Sock)?;
    match flood_handshake(&sock, &mut session, deadline)? {
        None => {
            sock.close();
            Ok(FloodOutcome::Completed { challenged: true })
        }
        Some(_) => Err(ClientError::BadResponse(
            "challenged again after presenting a token",
        )),
    }
}

/// Spawn `n_clients` flood threads hammering `listener` with full
/// ClientHellos until `stop` is set — the handshake-flood adversary
/// (`loadgen --flood`). Each client declares a distinct stable address,
/// so `honor_retry = true` models a well-behaved burst and `false` a
/// spoofing flooder that can never complete the token round trip.
pub fn spawn_flood(
    listener: Arc<VListener>,
    cfg: ClientConfig,
    n_clients: usize,
    honor_retry: bool,
    stop: Arc<AtomicBool>,
    stats: Arc<FloodStats>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n_clients)
        .map(|client_idx| {
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name(format!("flood-{client_idx}"))
                .spawn(move || {
                    let mut seed = 0xf100d_0000_0000 + ((client_idx as u64) << 24);
                    let addr = 0xf100d_0000 + client_idx as u64;
                    while !stop.load(Ordering::Relaxed) {
                        seed += 1;
                        stats.attempts.fetch_add(1, Ordering::Relaxed);
                        match run_flood_connection(
                            &listener,
                            &cfg,
                            seed,
                            addr,
                            honor_retry,
                            Duration::from_secs(30),
                        ) {
                            Ok(FloodOutcome::Completed { challenged }) => {
                                stats.admitted.fetch_add(1, Ordering::Relaxed);
                                if challenged {
                                    stats.challenged.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(FloodOutcome::Challenged) => {
                                stats.challenged.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn flood client")
        })
        .collect()
}

/// Drive one established keep-alive connection until `stop`, issuing
/// `GET path` requests back to back and recording each request's
/// latency — the background population whose service quality a
/// handshake flood must not destroy. Returns the per-request latencies.
pub fn run_keepalive_stream(
    listener: &VListener,
    path: &str,
    seed: u64,
    stop: &AtomicBool,
    timeout: Duration,
) -> Result<Vec<Duration>, ClientError> {
    let deadline = Instant::now() + timeout;
    let cfg = ClientConfig::default();
    let sock = listener.connect();
    let mut session =
        ClientSession::new(CryptoProvider::Software, cfg.suite, cfg.curve, None, seed);
    session.start()?;
    pump_until(&mut session, &sock, deadline, |s| s.is_established())?;
    let mut latencies = Vec::new();
    let mut resp_buf: Vec<u8> = Vec::new();
    let req = format!("GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: keep-alive\r\n\r\n");
    while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
        let t0 = Instant::now();
        session.write_app_data(req.as_bytes())?;
        let mut needed: Option<usize> = None;
        let mut malformed: Option<&'static str> = None;
        pump_until(&mut session, &sock, deadline, |s| {
            while let Some(chunk) = s.read_app_data() {
                resp_buf.extend_from_slice(&chunk);
            }
            if needed.is_none() {
                match response_progress(&resp_buf) {
                    ResponseProgress::Incomplete => {}
                    ResponseProgress::Complete { total_len, .. } => needed = Some(total_len),
                    ResponseProgress::Malformed(why) => {
                        malformed = Some(why);
                        return true;
                    }
                }
            }
            needed.is_some_and(|total| resp_buf.len() >= total)
        })?;
        if let Some(why) = malformed {
            return Err(ClientError::BadResponse(why));
        }
        let total = needed.ok_or(ClientError::BadResponse("response never completed"))?;
        resp_buf.drain(..total);
        latencies.push(t0.elapsed());
    }
    sock.close();
    Ok(latencies)
}

/// The `q`-quantile (e.g. 0.99) of a latency sample, by sorting.
pub fn latency_quantile(latencies: &[Duration], q: f64) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort();
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fetch the worker's `/trace` Chrome trace-event export over an
/// ordinary TLS connection — the load generator's end-of-run trace
/// collection. The endpoint is served in-band like any content path, so
/// this is one more short keep-alive-free GET against the listener. A
/// non-200 answer (sampling off, `trace_export off`) is reported as
/// [`ClientError::BadResponse`] rather than an empty artifact.
pub fn fetch_trace(
    listener: &VListener,
    seed: u64,
    timeout: Duration,
) -> Result<String, ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect();
    let mut session = ClientSession::new(
        CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        seed,
    );
    session.start()?;
    pump_until(&mut session, &sock, deadline, |s| s.is_established())?;
    session.write_app_data(b"GET /trace HTTP/1.1\r\nHost: qtls\r\nConnection: close\r\n\r\n")?;
    let mut resp_buf: Vec<u8> = Vec::new();
    let mut needed: Option<(usize, usize)> = None; // (total, header)
    let mut malformed: Option<&'static str> = None;
    pump_until(&mut session, &sock, deadline, |s| {
        while let Some(chunk) = s.read_app_data() {
            resp_buf.extend_from_slice(&chunk);
        }
        if needed.is_none() {
            match response_progress(&resp_buf) {
                ResponseProgress::Incomplete => {}
                ResponseProgress::Complete {
                    header_len,
                    total_len,
                } => needed = Some((total_len, header_len)),
                ResponseProgress::Malformed(why) => {
                    malformed = Some(why);
                    return true;
                }
            }
        }
        needed.is_some_and(|(total, _)| resp_buf.len() >= total)
    })?;
    sock.close();
    if let Some(why) = malformed {
        return Err(ClientError::BadResponse(why));
    }
    let (total, header_len) = needed.ok_or(ClientError::BadResponse("response never completed"))?;
    let head = std::str::from_utf8(&resp_buf[..header_len])
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::BadResponse("missing status line"))?;
    if status != 200 {
        return Err(ClientError::BadResponse(
            "trace endpoint did not answer 200",
        ));
    }
    String::from_utf8(resp_buf[header_len..total].to_vec())
        .map_err(|_| ClientError::BadResponse("trace body is not UTF-8"))
}

/// The `--trace-dump <path>` flag: fetch `/trace` at the end of a run
/// and write the JSON document to `path`, so benches and figure runs
/// can archive span trees alongside their `BENCH_*.json` artifacts.
/// Returns the number of bytes written.
pub fn trace_dump(
    listener: &VListener,
    path: &std::path::Path,
    seed: u64,
    timeout: Duration,
) -> Result<usize, ClientError> {
    let doc = fetch_trace(listener, seed, timeout)?;
    std::fs::write(path, &doc)?;
    Ok(doc.len())
}

/// Spawn `n_clients` closed-loop client threads hammering `listener`
/// until `stop` is set. Mirrors "1000 s_time processes ... launched to
/// establish new TLS connections".
pub fn spawn_clients(
    listener: Arc<VListener>,
    cfg: ClientConfig,
    n_clients: usize,
    stop: Arc<AtomicBool>,
    stats: Arc<LoadStats>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n_clients)
        .map(|client_idx| {
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name(format!("loadgen-{client_idx}"))
                .spawn(move || {
                    let mut seed = 0xc11e_0000_0000 + ((client_idx as u64) << 20);
                    let mut resume12: Option<ResumeData> = None;
                    let mut resume13: Option<Tls13ResumeData> = None;
                    let mut since_full = 0usize;
                    // `--resume-fraction` pacing: a fractional accumulator
                    // fires one resumption attempt each time it crosses 1,
                    // holding the mixture at any stream length.
                    let mut fraction_acc = 0.0f64;
                    while !stop.load(Ordering::Relaxed) {
                        seed += 1;
                        // Resumption mixture control (Fig. 9b).
                        let want_resume = if cfg.resume_fraction > 0.0 {
                            fraction_acc += cfg.resume_fraction;
                            if fraction_acc >= 1.0 {
                                fraction_acc -= 1.0;
                                true
                            } else {
                                false
                            }
                        } else if cfg.resumes_per_full > 0 {
                            since_full < cfg.resumes_per_full
                        } else {
                            false
                        };
                        let t0 = Instant::now();
                        let outcome = match cfg.version {
                            Version::Tls12 => run_connection(
                                &listener,
                                &cfg,
                                seed,
                                if want_resume { resume12.clone() } else { None },
                                Duration::from_secs(30),
                            )
                            .map(
                                |(new_resume, resumed, responses, bytes, req_bytes)| {
                                    if new_resume.is_some() {
                                        resume12 = new_resume;
                                    }
                                    (resumed, responses, bytes, req_bytes)
                                },
                            ),
                            Version::Tls13 => run_connection_tls13(
                                &listener,
                                &cfg,
                                seed,
                                if want_resume { resume13.clone() } else { None },
                                Duration::from_secs(30),
                            )
                            .map(
                                |(new_resume, resumed, responses, bytes, req_bytes)| {
                                    if new_resume.is_some() {
                                        resume13 = new_resume;
                                    }
                                    (resumed, responses, bytes, req_bytes)
                                },
                            ),
                        };
                        match outcome {
                            Ok((resumed, responses, bytes, req_bytes)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .latency_us_total
                                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                                if resumed {
                                    stats.resumed.fetch_add(1, Ordering::Relaxed);
                                    since_full += 1;
                                } else {
                                    since_full = 0;
                                }
                                stats.responses.fetch_add(responses, Ordering::Relaxed);
                                stats.body_bytes.fetch_add(bytes, Ordering::Relaxed);
                                stats.bytes_sent.fetch_add(req_bytes, Ordering::Relaxed);
                            }
                            Err(_) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                        }
                    }
                })
                .expect("spawn client")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_headers_keep_accumulating() {
        // A read boundary can land anywhere — mid status line, mid
        // header name, one byte short of the terminator. All of these
        // must report Incomplete, never panic or error.
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() - 5 {
            assert!(
                matches!(
                    response_progress(&full[..cut]),
                    ResponseProgress::Incomplete
                ),
                "cut at {cut} must be Incomplete"
            );
        }
    }

    #[test]
    fn complete_headers_give_total_and_header_len() {
        let buf = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbo";
        match response_progress(buf) {
            ResponseProgress::Complete {
                header_len,
                total_len,
            } => {
                assert_eq!(header_len, buf.len() - 2);
                assert_eq!(total_len, header_len + 4);
            }
            _ => panic!("headers are complete"),
        }
    }

    #[test]
    fn missing_content_length_means_headers_only() {
        let buf = b"HTTP/1.1 204 No Content\r\n\r\n";
        match response_progress(buf) {
            ResponseProgress::Complete {
                header_len,
                total_len,
            } => {
                assert_eq!(header_len, buf.len());
                assert_eq!(total_len, buf.len());
            }
            _ => panic!("headers are complete"),
        }
    }

    #[test]
    fn malformed_responses_are_definite_errors_not_silence() {
        // Regression: these used to parse to `None`, indistinguishable
        // from "keep reading" — the client spun until the 30 s timeout.
        assert!(matches!(
            response_progress(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n"),
            ResponseProgress::Malformed(_)
        ));
        let mut bad_utf8 = b"HTTP/1.1 200 OK\r\nX-Junk: ".to_vec();
        bad_utf8.extend_from_slice(&[0xff, 0xfe]);
        bad_utf8.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(
            response_progress(&bad_utf8),
            ResponseProgress::Malformed(_)
        ));
    }
}
