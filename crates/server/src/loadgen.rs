//! Closed-loop load generators — the `openssl s_time` and ApacheBench
//! roles of the paper's client servers, over the in-memory network.

use crate::net::{SockError, VListener, VSocket};
use qtls_crypto::ecc::NamedCurve;
use qtls_tls::client::{ClientSession, ResumeData};
use qtls_tls::provider::CryptoProvider;
use qtls_tls::suite::CipherSuite;
use qtls_tls::tls13::Tls13ClientSession;
use qtls_tls::TlsError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generation parameters for one client stream.
#[derive(Clone)]
pub struct ClientConfig {
    /// Cipher suite to offer.
    pub suite: CipherSuite,
    /// Curve to offer.
    pub curve: NamedCurve,
    /// Path to GET after the handshake (None = handshake-only, like
    /// `s_time` against a closed page).
    pub request_path: Option<String>,
    /// Keep-alive requests per connection (1 = close after first).
    pub requests_per_conn: usize,
    /// Attempt session resumption on subsequent connections (the
    /// `s_time -reuse` flag / Fig. 9 workloads). The value is the number
    /// of abbreviated handshakes per full handshake (e.g. 9 for the 1:9
    /// mixture); 0 disables resumption.
    pub resumes_per_full: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            suite: CipherSuite::EcdheRsa,
            curve: NamedCurve::P256,
            request_path: None,
            requests_per_conn: 1,
            resumes_per_full: 0,
        }
    }
}

/// Aggregate results across all client streams.
#[derive(Debug, Default)]
pub struct LoadStats {
    /// Completed connections (handshakes).
    pub connections: AtomicU64,
    /// Of which resumed.
    pub resumed: AtomicU64,
    /// HTTP responses fully received.
    pub responses: AtomicU64,
    /// Response body bytes received.
    pub body_bytes: AtomicU64,
    /// Errors.
    pub errors: AtomicU64,
    /// Total connection latency in microseconds (for averaging).
    pub latency_us_total: AtomicU64,
}

impl LoadStats {
    /// Average time from connect to connection completion.
    pub fn avg_latency(&self) -> Duration {
        let n = self.connections.load(Ordering::Relaxed).max(1);
        Duration::from_micros(self.latency_us_total.load(Ordering::Relaxed) / n)
    }
}

/// Errors a client stream can hit.
#[derive(Debug)]
pub enum ClientError {
    /// TLS failure.
    Tls(TlsError),
    /// Transport failure.
    Sock(SockError),
    /// Server never answered.
    Timeout,
    /// Response was malformed.
    BadResponse(&'static str),
}

impl From<TlsError> for ClientError {
    fn from(e: TlsError) -> Self {
        ClientError::Tls(e)
    }
}

/// Pump a client session against a socket until `done` says stop.
fn pump_until(
    session: &mut ClientSession,
    sock: &VSocket,
    deadline: Instant,
    mut done: impl FnMut(&mut ClientSession) -> bool,
) -> Result<(), ClientError> {
    loop {
        let out = session.take_output();
        if !out.is_empty() {
            sock.write(&out).map_err(ClientError::Sock)?;
        }
        match sock.read_all() {
            Ok(bytes) => {
                session.feed(&bytes);
                session.process()?;
            }
            Err(SockError::WouldBlock) => {}
            Err(SockError::Closed) => return Err(ClientError::Sock(SockError::Closed)),
        }
        if done(session) {
            // Flush any remaining output (e.g. the final Finished).
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(ClientError::Timeout);
        }
        std::thread::yield_now();
    }
}

/// Extract the Content-Length of a response, if headers are complete.
fn response_content_len(buf: &[u8]) -> Option<(usize, usize)> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..end]).ok()?;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                return Some((end, value.trim().parse().ok()?));
            }
        }
    }
    Some((end, 0))
}

/// Run one TLS 1.3 connection: handshake, optional single request,
/// close. Returns `(responses, body_bytes)`.
pub fn run_connection_tls13(
    listener: &VListener,
    cfg: &ClientConfig,
    seed: u64,
    timeout: Duration,
) -> Result<(u64, u64), ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect();
    let mut session = Tls13ClientSession::new(CryptoProvider::Software, cfg.suite, cfg.curve, seed);
    session.start()?;
    let pump13 = |session: &mut Tls13ClientSession,
                  done: &mut dyn FnMut(&mut Tls13ClientSession) -> bool|
     -> Result<(), ClientError> {
        loop {
            let out = session.take_output();
            if !out.is_empty() {
                sock.write(&out).map_err(ClientError::Sock)?;
            }
            match sock.read_all() {
                Ok(bytes) => {
                    session.feed(&bytes);
                    session.process()?;
                }
                Err(SockError::WouldBlock) => {}
                Err(SockError::Closed) => return Err(ClientError::Sock(SockError::Closed)),
            }
            if done(session) {
                let out = session.take_output();
                if !out.is_empty() {
                    sock.write(&out).map_err(ClientError::Sock)?;
                }
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::yield_now();
        }
    };
    pump13(&mut session, &mut |s| s.is_established())?;
    let mut responses = 0u64;
    let mut body_bytes = 0u64;
    if let Some(path) = &cfg.request_path {
        let req = format!("GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: close\r\n\r\n");
        session.write_app_data(req.as_bytes())?;
        let mut resp_buf: Vec<u8> = Vec::new();
        let mut needed: Option<usize> = None;
        pump13(&mut session, &mut |s| {
            while let Some(chunk) = s.read_app_data() {
                resp_buf.extend_from_slice(&chunk);
            }
            if needed.is_none() {
                if let Some((hdr, len)) = response_content_len(&resp_buf) {
                    needed = Some(hdr + len);
                }
            }
            needed.is_some_and(|n| resp_buf.len() >= n)
        })?;
        let n = needed.expect("set by closure");
        body_bytes += (n - response_content_len(&resp_buf).unwrap().0) as u64;
        responses += 1;
    }
    sock.close();
    Ok((responses, body_bytes))
}

/// Run one connection: handshake, optional requests, close.
/// Returns resumption material for the next connection.
pub fn run_connection(
    listener: &VListener,
    cfg: &ClientConfig,
    seed: u64,
    resume: Option<ResumeData>,
    timeout: Duration,
) -> Result<(Option<ResumeData>, bool, u64, u64), ClientError> {
    let deadline = Instant::now() + timeout;
    let sock = listener.connect();
    let mut session =
        ClientSession::new(CryptoProvider::Software, cfg.suite, cfg.curve, resume, seed);
    session.start()?;
    pump_until(&mut session, &sock, deadline, |s| s.is_established())?;
    let resumed = session.was_resumed();
    let mut responses = 0u64;
    let mut body_bytes = 0u64;
    if let Some(path) = &cfg.request_path {
        let mut resp_buf: Vec<u8> = Vec::new();
        for i in 0..cfg.requests_per_conn {
            let keep = i + 1 < cfg.requests_per_conn;
            let req = format!(
                "GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: {}\r\n\r\n",
                if keep { "keep-alive" } else { "close" }
            );
            session.write_app_data(req.as_bytes())?;
            // Read until a complete response is buffered.
            let mut needed: Option<usize> = None;
            pump_until(&mut session, &sock, deadline, |s| {
                while let Some(chunk) = s.read_app_data() {
                    resp_buf.extend_from_slice(&chunk);
                }
                if needed.is_none() {
                    if let Some((hdr, len)) = response_content_len(&resp_buf) {
                        needed = Some(hdr + len);
                    }
                }
                needed.is_some_and(|n| resp_buf.len() >= n)
            })?;
            let n = needed.expect("set by closure");
            body_bytes += (n - response_content_len(&resp_buf).unwrap().0) as u64;
            resp_buf.drain(..n);
            responses += 1;
        }
    }
    let resume_out = session.export_resume_data();
    sock.close();
    Ok((resume_out, resumed, responses, body_bytes))
}

/// Spawn `n_clients` closed-loop client threads hammering `listener`
/// until `stop` is set. Mirrors "1000 s_time processes ... launched to
/// establish new TLS connections".
pub fn spawn_clients(
    listener: Arc<VListener>,
    cfg: ClientConfig,
    n_clients: usize,
    stop: Arc<AtomicBool>,
    stats: Arc<LoadStats>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n_clients)
        .map(|client_idx| {
            let listener = Arc::clone(&listener);
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name(format!("loadgen-{client_idx}"))
                .spawn(move || {
                    let mut seed = 0xc11e_0000_0000 + ((client_idx as u64) << 20);
                    let mut resume: Option<ResumeData> = None;
                    let mut since_full = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        seed += 1;
                        // Resumption mixture control (Fig. 9b).
                        let attempt_resume = if cfg.resumes_per_full == 0 {
                            None
                        } else if since_full < cfg.resumes_per_full {
                            resume.clone()
                        } else {
                            None
                        };
                        let t0 = Instant::now();
                        match run_connection(
                            &listener,
                            &cfg,
                            seed,
                            attempt_resume,
                            Duration::from_secs(30),
                        ) {
                            Ok((new_resume, resumed, responses, bytes)) => {
                                stats.connections.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .latency_us_total
                                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                                if resumed {
                                    stats.resumed.fetch_add(1, Ordering::Relaxed);
                                    since_full += 1;
                                } else {
                                    since_full = 0;
                                }
                                if new_resume.is_some() {
                                    resume = new_resume;
                                }
                                stats.responses.fetch_add(responses, Ordering::Relaxed);
                                stats.body_bytes.fetch_add(bytes, Ordering::Relaxed);
                            }
                            Err(_) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                        }
                    }
                })
                .expect("spawn client")
        })
        .collect()
}
