//! In-memory network substrate: non-blocking virtual sockets with the
//! semantics the event-driven architecture needs (readable/writable
//! readiness, `WouldBlock`, FIN/close) — standing in for the testbed's
//! TCP over back-to-back 40 GbE NICs.

use qtls_sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One direction's byte pipe.
struct Pipe {
    buf: Mutex<VecDeque<u8>>,
    closed: AtomicBool,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            buf: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
        })
    }
}

/// Non-blocking socket I/O errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SockError {
    /// No bytes available / peer buffer full (never full here, reads only).
    WouldBlock,
    /// Peer closed its end.
    Closed,
}

/// A non-blocking, in-memory stream socket.
pub struct VSocket {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl VSocket {
    /// A connected socket pair.
    pub fn pair() -> (VSocket, VSocket) {
        let a = Pipe::new();
        let b = Pipe::new();
        (
            VSocket {
                rx: Arc::clone(&a),
                tx: Arc::clone(&b),
            },
            VSocket { rx: b, tx: a },
        )
    }

    /// Read up to `buf.len()` bytes (non-blocking).
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, SockError> {
        let mut rx = self.rx.buf.lock();
        if rx.is_empty() {
            if self.rx.closed.load(Ordering::Acquire) {
                return Err(SockError::Closed);
            }
            return Err(SockError::WouldBlock);
        }
        let n = buf.len().min(rx.len());
        for b in buf.iter_mut().take(n) {
            *b = rx.pop_front().unwrap();
        }
        Ok(n)
    }

    /// Drain everything currently readable.
    pub fn read_all(&self) -> Result<Vec<u8>, SockError> {
        let mut rx = self.rx.buf.lock();
        if rx.is_empty() {
            if self.rx.closed.load(Ordering::Acquire) {
                return Err(SockError::Closed);
            }
            return Err(SockError::WouldBlock);
        }
        Ok(rx.drain(..).collect())
    }

    /// Write all bytes (the in-memory pipe is unbounded).
    pub fn write(&self, data: &[u8]) -> Result<(), SockError> {
        if self.tx.closed.load(Ordering::Acquire) {
            return Err(SockError::Closed);
        }
        self.tx.buf.lock().extend(data);
        Ok(())
    }

    /// Any bytes waiting to be read?
    pub fn readable(&self) -> bool {
        !self.rx.buf.lock().is_empty()
    }

    /// Has the peer closed (and no bytes remain)?
    pub fn peer_closed(&self) -> bool {
        self.rx.closed.load(Ordering::Acquire) && self.rx.buf.lock().is_empty()
    }

    /// Close the socket (both directions; buffered bytes remain readable
    /// by the peer).
    pub fn close(&self) {
        self.tx.closed.store(true, Ordering::Release);
        self.rx.closed.store(true, Ordering::Release);
    }
}

impl Drop for VSocket {
    fn drop(&mut self) {
        self.close();
    }
}

/// A listening endpoint accepting virtual connections.
pub struct VListener {
    backlog: Mutex<VecDeque<VSocket>>,
}

impl Default for VListener {
    fn default() -> Self {
        Self::new()
    }
}

impl VListener {
    /// New listener.
    pub fn new() -> Self {
        VListener {
            backlog: Mutex::new(VecDeque::new()),
        }
    }

    /// Client side: connect, returning the client socket.
    pub fn connect(&self) -> VSocket {
        let (client, server) = VSocket::pair();
        self.backlog.lock().push_back(server);
        client
    }

    /// Server side: accept a pending connection (non-blocking).
    pub fn accept(&self) -> Option<VSocket> {
        self.backlog.lock().pop_front()
    }

    /// Inject an already-established server-side socket (used by the
    /// cluster's master dispatcher to balance connections to workers).
    pub fn inject(&self, sock: VSocket) {
        self.backlog.lock().push_back(sock);
    }

    /// Pending connections.
    pub fn pending(&self) -> usize {
        self.backlog.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_bidirectional() {
        let (a, b) = VSocket::pair();
        a.write(b"ping").unwrap();
        assert!(b.readable());
        assert_eq!(b.read_all().unwrap(), b"ping");
        b.write(b"pong").unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(a.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"po");
        assert_eq!(a.read_all().unwrap(), b"ng");
    }

    #[test]
    fn would_block_when_empty() {
        let (a, _b) = VSocket::pair();
        assert_eq!(a.read_all().unwrap_err(), SockError::WouldBlock);
        assert!(!a.readable());
    }

    #[test]
    fn close_semantics() {
        let (a, b) = VSocket::pair();
        a.write(b"last").unwrap();
        a.close();
        // Buffered data is still readable after FIN.
        assert_eq!(b.read_all().unwrap(), b"last");
        assert_eq!(b.read_all().unwrap_err(), SockError::Closed);
        assert!(b.peer_closed());
        assert_eq!(b.write(b"x").unwrap_err(), SockError::Closed);
    }

    #[test]
    fn drop_closes() {
        let (a, b) = VSocket::pair();
        drop(a);
        assert!(b.peer_closed());
    }

    #[test]
    fn listener_accept_order() {
        let l = VListener::new();
        let c1 = l.connect();
        let c2 = l.connect();
        assert_eq!(l.pending(), 2);
        let s1 = l.accept().unwrap();
        c1.write(b"one").unwrap();
        c2.write(b"two").unwrap();
        assert_eq!(s1.read_all().unwrap(), b"one");
        let s2 = l.accept().unwrap();
        assert_eq!(s2.read_all().unwrap(), b"two");
        assert!(l.accept().is_none());
    }

    #[test]
    fn cross_thread() {
        let l = Arc::new(VListener::new());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let c = l2.connect();
            c.write(b"hello from client").unwrap();
            loop {
                match c.read_all() {
                    Ok(v) => return v,
                    Err(SockError::WouldBlock) => std::thread::yield_now(),
                    Err(e) => panic!("{e:?}"),
                }
            }
        });
        let s = loop {
            if let Some(s) = l.accept() {
                break s;
            }
            std::thread::yield_now();
        };
        let got = loop {
            match s.read_all() {
                Ok(v) => break v,
                Err(_) => std::thread::yield_now(),
            }
        };
        assert_eq!(got, b"hello from client");
        s.write(b"hi client").unwrap();
        assert_eq!(t.join().unwrap(), b"hi client");
    }
}
