//! In-memory network substrate: non-blocking virtual sockets with the
//! semantics the event-driven architecture needs (readable/writable
//! readiness, `WouldBlock`, FIN/close) — standing in for the testbed's
//! TCP over back-to-back 40 GbE NICs.

use qtls_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One direction's byte pipe.
struct Pipe {
    buf: Mutex<VecDeque<u8>>,
    closed: AtomicBool,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            buf: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
        })
    }
}

/// Non-blocking socket I/O errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SockError {
    /// No bytes available / peer buffer full (never full here, reads only).
    WouldBlock,
    /// Peer closed its end.
    Closed,
}

/// A non-blocking, in-memory stream socket.
pub struct VSocket {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    /// The peer's address (0 = unknown) — the source-address bit the
    /// admission layer binds retry tokens to.
    peer: u64,
    /// Trace stamp: when this server-side socket entered a listener
    /// backlog (0 = unstamped; only set while connection tracing is on,
    /// see [`VListener::set_queue_timestamps`]).
    queued_ns: u64,
    /// Trace annotation: dispatch probes the cluster master spent
    /// picking this socket's worker.
    probes: u32,
    /// Trace annotation: the socket reached its worker by work
    /// stealing, not dispatch.
    stolen: bool,
}

impl VSocket {
    /// A connected socket pair.
    pub fn pair() -> (VSocket, VSocket) {
        Self::pair_from(0)
    }

    /// A connected socket pair where the client end carries address
    /// `client_addr`: the returned `(client, server)` server end
    /// reports it as [`VSocket::peer_addr`].
    pub fn pair_from(client_addr: u64) -> (VSocket, VSocket) {
        let a = Pipe::new();
        let b = Pipe::new();
        (
            VSocket {
                rx: Arc::clone(&a),
                tx: Arc::clone(&b),
                peer: 0,
                queued_ns: 0,
                probes: 0,
                stolen: false,
            },
            VSocket {
                rx: b,
                tx: a,
                peer: client_addr,
                queued_ns: 0,
                probes: 0,
                stolen: false,
            },
        )
    }

    /// The peer's address (0 when the peer did not declare one).
    pub fn peer_addr(&self) -> u64 {
        self.peer
    }

    /// When this socket entered a listener backlog (0 = unstamped).
    pub fn queued_ns(&self) -> u64 {
        self.queued_ns
    }

    /// Dispatch probes spent routing this socket (trace annotation).
    pub fn dispatch_probes(&self) -> u32 {
        self.probes
    }

    /// Annotate the dispatch probe count (cluster master).
    pub fn set_dispatch_probes(&mut self, probes: u32) {
        self.probes = probes;
    }

    /// Did this socket arrive at its worker via work stealing?
    pub fn stolen(&self) -> bool {
        self.stolen
    }

    /// Read up to `buf.len()` bytes (non-blocking).
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, SockError> {
        let mut rx = self.rx.buf.lock();
        if rx.is_empty() {
            if self.rx.closed.load(Ordering::Acquire) {
                return Err(SockError::Closed);
            }
            return Err(SockError::WouldBlock);
        }
        let n = buf.len().min(rx.len());
        for b in buf.iter_mut().take(n) {
            *b = rx.pop_front().unwrap();
        }
        Ok(n)
    }

    /// Drain everything currently readable.
    pub fn read_all(&self) -> Result<Vec<u8>, SockError> {
        let mut rx = self.rx.buf.lock();
        if rx.is_empty() {
            if self.rx.closed.load(Ordering::Acquire) {
                return Err(SockError::Closed);
            }
            return Err(SockError::WouldBlock);
        }
        Ok(rx.drain(..).collect())
    }

    /// Write all bytes (the in-memory pipe is unbounded).
    pub fn write(&self, data: &[u8]) -> Result<(), SockError> {
        if self.tx.closed.load(Ordering::Acquire) {
            return Err(SockError::Closed);
        }
        self.tx.buf.lock().extend(data);
        Ok(())
    }

    /// Any bytes waiting to be read?
    pub fn readable(&self) -> bool {
        !self.rx.buf.lock().is_empty()
    }

    /// Has the peer closed (and no bytes remain)?
    pub fn peer_closed(&self) -> bool {
        self.rx.closed.load(Ordering::Acquire) && self.rx.buf.lock().is_empty()
    }

    /// Close the socket (both directions; buffered bytes remain readable
    /// by the peer).
    pub fn close(&self) {
        self.tx.closed.store(true, Ordering::Release);
        self.rx.closed.store(true, Ordering::Release);
    }
}

impl Drop for VSocket {
    fn drop(&mut self) {
        self.close();
    }
}

/// Default accept-backlog capacity (the `listen()` backlog role).
pub const DEFAULT_BACKLOG: usize = 4096;

/// A listening endpoint accepting virtual connections. The backlog is
/// bounded: connections arriving at a full queue are shed immediately
/// (the client's end reads `Closed`, like a SYN dropped at a full
/// accept queue) and counted, so a handshake flood cannot grow the
/// queue without bound.
pub struct VListener {
    backlog: Mutex<VecDeque<VSocket>>,
    /// Signalled whenever the backlog gains an entry, so an accepting
    /// thread can park instead of spinning when idle.
    arrived: Condvar,
    cap: usize,
    rejected: AtomicU64,
    /// When set, sockets entering the backlog are stamped with
    /// [`qtls_core::obs::now_ns`] so the accepting worker can attribute
    /// backlog wait time. Off by default: the accept path then performs
    /// one relaxed load and no clock reads.
    stamp: AtomicBool,
}

impl Default for VListener {
    fn default() -> Self {
        Self::new()
    }
}

impl VListener {
    /// New listener with the default backlog capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BACKLOG)
    }

    /// New listener shedding connections beyond `cap` pending accepts.
    pub fn with_capacity(cap: usize) -> Self {
        VListener {
            backlog: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
            cap: cap.max(1),
            rejected: AtomicU64::new(0),
            stamp: AtomicBool::new(false),
        }
    }

    /// Enable backlog-entry timestamping (connection tracing).
    pub fn set_queue_timestamps(&self, on: bool) {
        self.stamp.store(on, Ordering::Relaxed);
    }

    /// Client side: connect, returning the client socket.
    pub fn connect(&self) -> VSocket {
        self.connect_from(0)
    }

    /// Connect declaring the client's address `addr` (what the server
    /// side will see as [`VSocket::peer_addr`]). At a full backlog the
    /// connection is shed: the returned client socket reads `Closed`.
    pub fn connect_from(&self, addr: u64) -> VSocket {
        let (client, mut server) = VSocket::pair_from(addr);
        if self.stamp.load(Ordering::Relaxed) {
            server.queued_ns = qtls_core::obs::now_ns();
        }
        let mut backlog = self.backlog.lock();
        if backlog.len() >= self.cap {
            drop(backlog);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            // Dropping the server end closes it; the client observes
            // the refusal on its first read.
            return client;
        }
        backlog.push_back(server);
        self.arrived.notify_one();
        client
    }

    /// Server side: accept a pending connection (non-blocking).
    pub fn accept(&self) -> Option<VSocket> {
        self.backlog.lock().pop_front()
    }

    /// Inject an already-established server-side socket (used by the
    /// cluster's master dispatcher to balance connections to workers).
    /// At a full backlog the socket is handed back so the dispatcher
    /// can retry another worker or shed it knowingly — never a silent
    /// drop.
    pub fn inject(&self, mut sock: VSocket) -> Result<(), VSocket> {
        if sock.queued_ns == 0 && self.stamp.load(Ordering::Relaxed) {
            sock.queued_ns = qtls_core::obs::now_ns();
        }
        let mut backlog = self.backlog.lock();
        if backlog.len() >= self.cap {
            drop(backlog);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(sock);
        }
        backlog.push_back(sock);
        self.arrived.notify_one();
        Ok(())
    }

    /// Pending connections.
    pub fn pending(&self) -> usize {
        self.backlog.lock().len()
    }

    /// Backlog capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Connections shed because the backlog was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Park until the backlog is non-empty or `timeout` elapses;
    /// returns whether anything is pending. Lets the dispatcher block
    /// instead of busy-spinning on an idle listener.
    pub fn wait_pending(&self, timeout: Duration) -> bool {
        let mut backlog = self.backlog.lock();
        if backlog.is_empty() {
            let _ = self.arrived.wait_for(&mut backlog, timeout);
        }
        !backlog.is_empty()
    }

    /// Steal-half protocol: remove up to `max` sockets from the BACK of
    /// the backlog — at most half of what is queued, so the victim
    /// keeps the older (front) half it is about to accept — and hand
    /// them to the caller intact. An idle worker uses this to take work
    /// from the most-loaded sibling's accept queue; nothing is closed
    /// or dropped, so socket conservation holds by construction.
    pub fn steal_half(&self, max: usize) -> Vec<VSocket> {
        let mut backlog = self.backlog.lock();
        let take = (backlog.len() / 2).min(max);
        let mut stolen = Vec::with_capacity(take);
        for _ in 0..take {
            let mut sock = backlog.pop_back().expect("len checked");
            sock.stolen = true;
            stolen.push(sock);
        }
        // Popped back-to-front: restore arrival order for the thief.
        stolen.reverse();
        stolen
    }

    /// Drain every still-queued connection, closing each, and return
    /// how many were dropped — shutdown accounting for sockets that
    /// were dispatched but never accepted.
    pub fn drain(&self) -> u64 {
        let drained: Vec<VSocket> = self.backlog.lock().drain(..).collect();
        let n = drained.len() as u64;
        for sock in drained {
            sock.close();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_bidirectional() {
        let (a, b) = VSocket::pair();
        a.write(b"ping").unwrap();
        assert!(b.readable());
        assert_eq!(b.read_all().unwrap(), b"ping");
        b.write(b"pong").unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(a.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf, b"po");
        assert_eq!(a.read_all().unwrap(), b"ng");
    }

    #[test]
    fn would_block_when_empty() {
        let (a, _b) = VSocket::pair();
        assert_eq!(a.read_all().unwrap_err(), SockError::WouldBlock);
        assert!(!a.readable());
    }

    #[test]
    fn close_semantics() {
        let (a, b) = VSocket::pair();
        a.write(b"last").unwrap();
        a.close();
        // Buffered data is still readable after FIN.
        assert_eq!(b.read_all().unwrap(), b"last");
        assert_eq!(b.read_all().unwrap_err(), SockError::Closed);
        assert!(b.peer_closed());
        assert_eq!(b.write(b"x").unwrap_err(), SockError::Closed);
    }

    #[test]
    fn drop_closes() {
        let (a, b) = VSocket::pair();
        drop(a);
        assert!(b.peer_closed());
    }

    #[test]
    fn listener_accept_order() {
        let l = VListener::new();
        let c1 = l.connect();
        let c2 = l.connect();
        assert_eq!(l.pending(), 2);
        let s1 = l.accept().unwrap();
        c1.write(b"one").unwrap();
        c2.write(b"two").unwrap();
        assert_eq!(s1.read_all().unwrap(), b"one");
        let s2 = l.accept().unwrap();
        assert_eq!(s2.read_all().unwrap(), b"two");
        assert!(l.accept().is_none());
    }

    #[test]
    fn peer_addr_travels_with_the_connection() {
        let l = VListener::new();
        let _client = l.connect_from(0xBEEF);
        let server = l.accept().unwrap();
        assert_eq!(server.peer_addr(), 0xBEEF);
        let _plain = l.connect();
        let server = l.accept().unwrap();
        assert_eq!(server.peer_addr(), 0, "plain connect declares no address");
    }

    #[test]
    fn backlog_cap_sheds_connects_and_counts() {
        let l = VListener::with_capacity(2);
        let c1 = l.connect();
        let c2 = l.connect();
        let c3 = l.connect();
        assert_eq!(l.pending(), 2, "third connection shed at capacity");
        assert_eq!(l.rejected(), 1);
        // The shed client observes the refusal; queued ones don't.
        assert_eq!(c3.read_all().unwrap_err(), SockError::Closed);
        assert_eq!(c1.read_all().unwrap_err(), SockError::WouldBlock);
        assert_eq!(c2.read_all().unwrap_err(), SockError::WouldBlock);
    }

    #[test]
    fn inject_reports_the_drop_instead_of_losing_the_socket() {
        let l = VListener::with_capacity(1);
        let (_c1, s1) = VSocket::pair();
        let (c2, s2) = VSocket::pair();
        assert!(l.inject(s1).is_ok());
        let back = l.inject(s2).expect_err("backlog full");
        assert_eq!(l.rejected(), 1);
        // The socket came back intact — the dispatcher can still place
        // it elsewhere or close it with accounting.
        back.write(b"still usable").unwrap();
        assert_eq!(c2.read_all().unwrap(), b"still usable");
    }

    #[test]
    fn wait_pending_parks_until_a_connection_arrives() {
        let l = Arc::new(VListener::new());
        // Idle: times out empty-handed.
        assert!(!l.wait_pending(Duration::from_millis(1)));
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let _c = l2.connect();
            std::thread::sleep(Duration::from_millis(50));
        });
        // A connect notifies the parked waiter well before 5 s.
        assert!(l.wait_pending(Duration::from_secs(5)));
        assert!(l.accept().is_some());
        t.join().unwrap();
    }

    #[test]
    fn steal_half_takes_the_back_and_keeps_order() {
        let l = VListener::new();
        let clients: Vec<VSocket> = (1..=5u64).map(|a| l.connect_from(a)).collect();
        // 5 queued: steal-half takes floor(5/2) = 2, from the back.
        let stolen = l.steal_half(usize::MAX);
        assert_eq!(stolen.len(), 2);
        assert_eq!(l.pending(), 3);
        assert_eq!(
            stolen.iter().map(|s| s.peer_addr()).collect::<Vec<_>>(),
            vec![4, 5],
            "thief gets the newest half in arrival order"
        );
        // The victim keeps the oldest sockets it was about to accept.
        assert_eq!(l.accept().unwrap().peer_addr(), 1);
        // Stolen sockets are intact, not closed.
        stolen[0].write(b"served elsewhere").unwrap();
        assert_eq!(clients[3].read_all().unwrap(), b"served elsewhere");
        // `max` caps the take; an empty or single-entry backlog yields
        // nothing (never leaves the victim empty-handed).
        assert_eq!(l.steal_half(0).len(), 0);
        let l2 = VListener::new();
        let _c = l2.connect();
        assert_eq!(l2.steal_half(8).len(), 0, "half of 1 rounds down to 0");
    }

    #[test]
    fn drain_counts_and_closes_undispatched_sockets() {
        let l = VListener::new();
        let c1 = l.connect();
        let c2 = l.connect();
        assert_eq!(l.drain(), 2);
        assert_eq!(l.pending(), 0);
        assert_eq!(c1.read_all().unwrap_err(), SockError::Closed);
        assert_eq!(c2.read_all().unwrap_err(), SockError::Closed);
        assert_eq!(l.drain(), 0, "idempotent");
    }

    #[test]
    fn cross_thread() {
        let l = Arc::new(VListener::new());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let c = l2.connect();
            c.write(b"hello from client").unwrap();
            loop {
                match c.read_all() {
                    Ok(v) => return v,
                    Err(SockError::WouldBlock) => std::thread::yield_now(),
                    Err(e) => panic!("{e:?}"),
                }
            }
        });
        let s = loop {
            if let Some(s) = l.accept() {
                break s;
            }
            std::thread::yield_now();
        };
        let got = loop {
            match s.read_all() {
                Ok(v) => break v,
                Err(_) => std::thread::yield_now(),
            }
        };
        assert_eq!(got, b"hello from client");
        s.write(b"hi client").unwrap();
        assert_eq!(t.join().unwrap(), b"hi client");
    }
}
