//! Smoke-scrape of the metrics plane for `scripts/check.sh`: boot a
//! sharded QTLS worker with `qat_metrics on`, drive one real TLS
//! connection, then fetch `/metrics`, `/stub_status?format=kv` and
//! `/flight` in-band. The scraped Prometheus page is echoed to stdout
//! (so the caller can grep its `# TYPE` lines against the
//! `obs::registry` constant list) followed by a `metrics_smoke: OK`
//! verdict; any violation panics with a non-zero exit.

use qtls_core::{obs, OffloadProfile};
use qtls_crypto::ecc::NamedCurve;
use qtls_qat::{QatConfig, QatDevice};
use qtls_server::{VListener, VSocket, Worker, WorkerConfig};
use qtls_tls::client::ClientSession;
use qtls_tls::provider::CryptoProvider;
use qtls_tls::suite::CipherSuite;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pump(worker: &mut Worker, sock: &VSocket, client: &mut ClientSession) {
    let out = client.take_output();
    if !out.is_empty() {
        sock.write(&out).expect("client -> server");
    }
    worker.run_iteration();
    if let Ok(bytes) = sock.read_all() {
        client.feed(&bytes);
        client.process().expect("client TLS state");
    }
}

fn https_get(
    worker: &mut Worker,
    sock: &VSocket,
    client: &mut ClientSession,
    path: &str,
) -> (u16, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: qtls\r\nConnection: keep-alive\r\n\r\n");
    client
        .write_app_data(req.as_bytes())
        .expect("write request");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got: Vec<u8> = Vec::new();
    loop {
        pump(worker, sock, client);
        while let Some(chunk) = client.read_app_data() {
            got.extend_from_slice(&chunk);
        }
        if let Some(hdr_end) = got.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&got[..hdr_end]).to_string();
            let len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            if got.len() >= hdr_end + 4 + len {
                let status = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse::<u16>().ok())
                    .expect("status line");
                let body =
                    String::from_utf8(got[hdr_end + 4..hdr_end + 4 + len].to_vec()).expect("body");
                return (status, body);
            }
        }
        assert!(Instant::now() < deadline, "no response for {path}");
    }
}

fn main() {
    let listener = Arc::new(VListener::new());
    let device = QatDevice::new(QatConfig {
        endpoints: 2,
        engines_per_endpoint: 2,
        ..QatConfig::functional_small()
    });
    let mut cfg = WorkerConfig::new(OffloadProfile::Qtls);
    cfg.metrics.enabled = true;
    let mut worker = Worker::new(Arc::clone(&listener), Some(&device), cfg);

    let sock = listener.connect();
    let mut client = ClientSession::new(
        CryptoProvider::Software,
        CipherSuite::EcdheRsa,
        NamedCurve::P256,
        None,
        7001,
    );
    client.start().expect("client hello");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !client.is_established() {
        pump(&mut worker, &sock, &mut client);
        assert!(Instant::now() < deadline, "handshake stalled");
    }
    for _ in 0..300 {
        worker.run_iteration();
    }

    let (status, page) = https_get(&mut worker, &sock, &mut client, "/metrics");
    assert_eq!(status, 200, "/metrics must serve when enabled");
    let families = obs::promtext::parse(&page).expect("valid Prometheus text");
    assert!(!families.is_empty(), "scrape produced no families");
    for family in &families {
        assert!(
            obs::registry::is_registered(family),
            "family {family} not in obs::registry::METRIC_NAMES"
        );
    }
    for must in [
        "qtls_metrics_enabled",
        "qtls_phase_latency_ns",
        "qtls_phase_latency_hist_ns",
        "qtls_shard_inflight",
        "qtls_qat_submitted_total",
        "qtls_worker_handshakes_total",
        "qtls_worker_accepts_total",
        "qtls_admission_challenges_total",
        "qtls_admission_tokens_verified_total",
        "qtls_admission_accept_sheds_total",
        "qtls_admission_overloads_total",
    ] {
        assert!(
            families.iter().any(|f| f == must),
            "family {must} missing from the scrape"
        );
    }

    let (status, kv) = https_get(&mut worker, &sock, &mut client, "/stub_status?format=kv");
    assert_eq!(status, 200);
    assert!(
        kv.lines().any(|l| l.starts_with("active_connections ")),
        "kv page lacks active_connections: {kv}"
    );
    let (status, flight) = https_get(&mut worker, &sock, &mut client, "/flight");
    assert_eq!(status, 200);
    assert!(flight.starts_with("flight: "), "bad flight dump: {flight}");

    print!("{page}");
    println!("metrics_smoke: OK families {}", families.len());
}
