//! Self-contained load-generator CLI: boots a QTLS cluster over the
//! in-process virtual transport, drives it with the library's client
//! streams, and prints the run summary. With `--trace-dump <path>` it
//! fetches the `/trace` Chrome trace-event export at the end of the run
//! and writes the JSON artifact, so a loaded run's span trees can be
//! archived (and opened in `chrome://tracing`) alongside the
//! `BENCH_*.json` results.
//!
//! Flags (all optional):
//!   --clients N          client threads (default 4)
//!   --duration-ms N      run length (default 1000)
//!   --path /NNkb         object to GET; default /16kb
//!   --requests N         keep-alive requests per connection (default 2)
//!   --resumes N          abbreviated handshakes per full one (default 0)
//!   --workers N          cluster worker processes (default 2)
//!   --trace-sample N     1-in-N connection sampling (default 16)
//!   --trace-dump PATH    write the /trace export here after the run

use qtls_server::loadgen::{self, ClientConfig, LoadStats};
use qtls_server::{parse_ssl_engine_conf, Cluster, ContentStore};
use qtls_tls::server::ServerConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    clients: usize,
    duration: Duration,
    path: String,
    requests: usize,
    resumes: usize,
    workers: usize,
    trace_sample: u64,
    trace_dump: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        clients: 4,
        duration: Duration::from_millis(1000),
        path: "/16kb".to_string(),
        requests: 2,
        resumes: 0,
        workers: 2,
        trace_sample: 16,
        trace_dump: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{flag} needs {what}"));
        match flag.as_str() {
            "--clients" => opts.clients = value("a count").parse().expect("--clients N"),
            "--duration-ms" => {
                opts.duration =
                    Duration::from_millis(value("milliseconds").parse().expect("--duration-ms N"))
            }
            "--path" => opts.path = value("a path"),
            "--requests" => opts.requests = value("a count").parse().expect("--requests N"),
            "--resumes" => opts.resumes = value("a count").parse().expect("--resumes N"),
            "--workers" => opts.workers = value("a count").parse().expect("--workers N"),
            "--trace-sample" => {
                opts.trace_sample = value("a rate").parse().expect("--trace-sample N")
            }
            "--trace-dump" => opts.trace_dump = Some(value("a file path").into()),
            other => panic!("unknown flag {other} (see the doc comment for usage)"),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let conf = format!(
        "worker_processes {};\n\
         ssl_engine {{\n    use qat_engine;\n    qat_engine {{\n        \
         qat_offload_mode async;\n        qat_notify_mode poll;\n    }}\n}}\n\
         qat_metrics on;\n\
         trace_sample_rate {};\n",
        opts.workers, opts.trace_sample
    );
    let directives = parse_ssl_engine_conf(&conf).expect("generated conf parses");
    let cluster = Cluster::start(
        &directives,
        ServerConfig::test_default(),
        Arc::new(ContentStore::new()),
    );
    let listener = cluster.listener();

    let cfg = ClientConfig {
        request_path: Some(opts.path.clone()),
        requests_per_conn: opts.requests.max(1),
        resumes_per_full: opts.resumes,
        ..ClientConfig::default()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LoadStats::default());
    let t0 = Instant::now();
    let handles = loadgen::spawn_clients(
        Arc::clone(&listener),
        cfg,
        opts.clients,
        Arc::clone(&stop),
        Arc::clone(&stats),
    );
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    println!("loadgen: {}", stats.summary(elapsed));

    // End-of-run artifact: the connections above are already reaped and
    // published (each client stream closes its socket before opening the
    // next), so one more short connection can export the span trees.
    if let Some(path) = &opts.trace_dump {
        match loadgen::trace_dump(&listener, path, 0x7d_0000_0001, Duration::from_secs(30)) {
            Ok(bytes) => println!("trace-dump: wrote {} ({bytes} bytes)", path.display()),
            Err(e) => {
                cluster.shutdown();
                panic!("trace-dump failed: {e:?}");
            }
        }
    }
    cluster.shutdown();
}
