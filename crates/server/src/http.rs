//! A minimal HTTP/1.1 subset: request parsing, keep-alive handling and a
//! content store serving fixed-size objects — the web-server role the
//! paper configures Nginx into for all experiments.

use qtls_sync::RwLock;
use std::collections::HashMap;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Keep the connection alive after responding?
    pub keep_alive: bool,
}

/// Incremental request parser outcome.
pub enum ParseOutcome {
    /// A complete request, plus bytes consumed.
    Complete(HttpRequest, usize),
    /// Need more bytes.
    Partial,
    /// Malformed request.
    Bad(&'static str),
}

/// Parse one request from `buf` (headers only; GET has no body).
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let Some(end) = find_header_end(buf) else {
        // Guard against unbounded header growth.
        if buf.len() > 16 * 1024 {
            return ParseOutcome::Bad("headers too large");
        }
        return ParseOutcome::Partial;
    };
    let head = match std::str::from_utf8(&buf[..end]) {
        Ok(s) => s,
        Err(_) => return ParseOutcome::Bad("non-utf8 headers"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Bad("bad request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ParseOutcome::Bad("bad version");
    }
    // HTTP/1.1 defaults to keep-alive unless "Connection: close".
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("connection") {
            let v = value.trim();
            if v.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if v.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    ParseOutcome::Complete(
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
        },
        end + 4,
    )
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Build a response with the given status and body.
pub fn build_response(status: u16, reason: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// An in-memory content store. Besides explicit entries, paths of the
/// form `/<N>kb` serve `N` kilobytes of synthetic data — the fixed-size
/// objects of the paper's transfer experiments (4 KB–1024 KB).
pub struct ContentStore {
    entries: RwLock<HashMap<String, Vec<u8>>>,
}

impl Default for ContentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentStore {
    /// Empty store (synthetic `/<N>kb` paths still resolve).
    pub fn new() -> Self {
        let mut entries = HashMap::new();
        // The "small-size page (less than 100 bytes)" of §5.5.
        entries.insert(
            "/".to_string(),
            b"<html>QTLS reproduction index</html>".to_vec(),
        );
        ContentStore {
            entries: RwLock::new(entries),
        }
    }

    /// Insert explicit content.
    pub fn insert(&self, path: &str, body: Vec<u8>) {
        self.entries.write().insert(path.to_string(), body);
    }

    /// Resolve a path to content.
    pub fn get(&self, path: &str) -> Option<Vec<u8>> {
        if let Some(body) = self.entries.read().get(path) {
            return Some(body.clone());
        }
        // Synthetic sized objects: "/64kb" etc.
        let stripped = path.strip_prefix('/')?.strip_suffix("kb")?;
        let kb: usize = stripped.parse().ok()?;
        if kb > 10 * 1024 {
            return None;
        }
        Some(synthetic_body(kb * 1024))
    }
}

/// Deterministic filler content of exactly `len` bytes.
pub fn synthetic_body(len: usize) -> Vec<u8> {
    let pattern = b"QTLS-PPoPP19-reproduction-payload-";
    pattern.iter().copied().cycle().take(len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_get() {
        let raw = b"GET /64kb HTTP/1.1\r\nHost: test\r\n\r\n";
        match parse_request(raw) {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/64kb");
                assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
                assert_eq!(used, raw.len());
            }
            _ => panic!("should parse"),
        }
    }

    #[test]
    fn parse_connection_close() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse_request(raw) {
            ParseOutcome::Complete(req, _) => assert!(!req.keep_alive),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_http10_default_close() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        match parse_request(raw) {
            ParseOutcome::Complete(req, _) => assert!(!req.keep_alive),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_partial() {
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nHost:"),
            ParseOutcome::Partial
        ));
    }

    #[test]
    fn parse_bad() {
        assert!(matches!(
            parse_request(b"NONSENSE\r\n\r\n"),
            ParseOutcome::Bad(_)
        ));
    }

    #[test]
    fn pipelined_requests_consume_correctly() {
        let mut raw = b"GET /a HTTP/1.1\r\n\r\n".to_vec();
        raw.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        match parse_request(&raw) {
            ParseOutcome::Complete(req, used) => {
                assert_eq!(req.path, "/a");
                match parse_request(&raw[used..]) {
                    ParseOutcome::Complete(req2, _) => assert_eq!(req2.path, "/b"),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn response_format() {
        let r = build_response(200, "OK", b"hello", true);
        let s = String::from_utf8(r).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 5\r\n"));
        assert!(s.contains("Connection: keep-alive"));
        assert!(s.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn content_store_sized_paths() {
        let store = ContentStore::new();
        assert_eq!(store.get("/4kb").unwrap().len(), 4 * 1024);
        assert_eq!(store.get("/1024kb").unwrap().len(), 1024 * 1024);
        assert!(store.get("/nope").is_none());
        assert!(store.get("/").unwrap().len() < 100, "small index page");
    }

    #[test]
    fn content_store_explicit_entries() {
        let store = ContentStore::new();
        store.insert("/custom", b"abc".to_vec());
        assert_eq!(store.get("/custom").unwrap(), b"abc");
    }
}
