//! The cluster scheduling plane (DESIGN.md §15): per-worker load gauges,
//! load-aware dispatch, work stealing, and the dispatcher's drain
//! signal.
//!
//! The sim ablation (`figures -- scheduling`) picked dFCFS with
//! least-loaded dispatch plus work stealing: it matches the centralized
//! queue's tail latency without paying a shared run queue. The pieces
//! here are what the real cluster needs to implement that discipline:
//!
//! - every worker publishes a cache-padded **load gauge** (accepted-but-
//!   unserved backlog + inflight handshakes + staged offload depth) once
//!   per event-loop sweep;
//! - the master dispatcher routes new sockets to the least-loaded worker
//!   found by a **bounded probe** (power-of-two-choices style), walking
//!   past full backlogs;
//! - an idle worker **steals half** of the most-loaded sibling's accept
//!   backlog through [`crate::net::VListener::steal_half`];
//! - workers ring the **drain signal** after every accept sweep, so a
//!   dispatcher facing all-full backlogs parks until a drain instead of
//!   sleeping a blind backoff.

use qtls_sync::{CachePadded, Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the master dispatcher picks the worker for a new socket (the
/// `dispatch_policy` directive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Blind rotation — the original policy, still selectable.
    #[default]
    RoundRobin,
    /// Route to the least-loaded worker within a bounded probe window.
    LeastLoaded,
}

/// How many gauges the dispatcher probes per decision under
/// [`DispatchPolicy::LeastLoaded`] — a power-of-two-choices-style
/// bounded walk, not a full scan, so the decision stays O(1) as the
/// worker count grows.
pub const DISPATCH_PROBE: usize = 4;

/// Pick the least-loaded index among the `probe` consecutive entries of
/// `gauges` starting at `start` (wrapping). Ties go to the first index
/// probed, so with `probe == gauges.len()` this is an exact argmin over
/// the rotation order. The pure decision function — the property tests
/// pin it as an argmin.
pub fn least_loaded_pick(gauges: &[u64], start: usize, probe: usize) -> usize {
    let n = gauges.len();
    debug_assert!(n > 0, "no workers to pick from");
    let probe = probe.clamp(1, n);
    let mut best = start % n;
    let mut best_load = gauges[best];
    for step in 1..probe {
        let i = (start + step) % n;
        if gauges[i] < best_load {
            best = i;
            best_load = gauges[i];
        }
    }
    best
}

/// Shared state between the master dispatcher and the workers: the load
/// gauges, the steal accounting, and the drain signal. One per cluster,
/// handed to every worker.
pub struct SchedShared {
    /// Per-worker load gauges. Cache-padded: each worker stores its own
    /// gauge every sweep, and padding keeps those stores from false-
    /// sharing a line with a neighbour's.
    gauges: Vec<CachePadded<AtomicU64>>,
    /// Sockets each worker stole INTO its backlog.
    stolen_in: Vec<CachePadded<AtomicU64>>,
    /// Sockets stolen OUT of each worker's backlog.
    stolen_out: Vec<CachePadded<AtomicU64>>,
    /// Bumped by a worker after every accept sweep that drained its
    /// backlog; the dispatcher parks on this when every backlog is full.
    drain_gen: Mutex<u64>,
    drained: Condvar,
    /// `dispatch_steal` directive: whether idle workers steal.
    steal: bool,
    /// `dispatch_policy` directive, re-exposed to workers for the
    /// metrics plane.
    policy: DispatchPolicy,
}

impl SchedShared {
    /// Scheduling state for `workers` workers.
    pub fn new(workers: usize, policy: DispatchPolicy, steal: bool) -> Self {
        SchedShared {
            gauges: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            stolen_in: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            stolen_out: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            drain_gen: Mutex::new(0),
            drained: Condvar::new(),
            steal,
            policy,
        }
    }

    /// Number of workers the plane tracks.
    pub fn workers(&self) -> usize {
        self.gauges.len()
    }

    /// Is work stealing enabled?
    pub fn steal_enabled(&self) -> bool {
        self.steal
    }

    /// The configured dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Worker `i` publishes its current load gauge.
    pub fn publish(&self, i: usize, load: u64) {
        self.gauges[i].store(load, Ordering::Relaxed);
    }

    /// Worker `i`'s last-published load gauge.
    pub fn load(&self, i: usize) -> u64 {
        self.gauges[i].load(Ordering::Relaxed)
    }

    /// Snapshot of every gauge, worker order.
    pub fn loads(&self) -> Vec<u64> {
        self.gauges
            .iter()
            .map(|g| g.load(Ordering::Relaxed))
            .collect()
    }

    /// The most-loaded worker other than `thief`, if any has a strictly
    /// higher gauge — the steal victim.
    pub fn most_loaded_except(&self, thief: usize) -> Option<usize> {
        let mut victim = None;
        let mut best = self.load(thief);
        for i in 0..self.gauges.len() {
            if i == thief {
                continue;
            }
            let l = self.load(i);
            if l > best {
                best = l;
                victim = Some(i);
            }
        }
        victim
    }

    /// Record `n` sockets moving from `victim`'s backlog to `thief`'s.
    pub fn record_steal(&self, thief: usize, victim: usize, n: u64) {
        self.stolen_in[thief].fetch_add(n, Ordering::Relaxed);
        self.stolen_out[victim].fetch_add(n, Ordering::Relaxed);
    }

    /// Per-worker `(stolen_in, stolen_out)` totals.
    pub fn steal_totals(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.stolen_in
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            self.stolen_out
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Current drain generation; read BEFORE probing the backlogs so a
    /// drain between probe and park is never missed.
    pub fn drain_generation(&self) -> u64 {
        *self.drain_gen.lock()
    }

    /// A worker drained (accepted from) its backlog: wake any parked
    /// dispatcher.
    pub fn note_drain(&self) {
        *self.drain_gen.lock() += 1;
        self.drained.notify_all();
    }

    /// Park until the drain generation advances past `seen` or `timeout`
    /// elapses; returns whether a drain was observed. This is what
    /// bounds dispatch latency under overload by the workers' drain
    /// rate instead of a blind backoff timer.
    pub fn wait_drain(&self, seen: u64, timeout: Duration) -> bool {
        let mut gen = self.drain_gen.lock();
        if *gen == seen {
            let _ = self.drained.wait_for(&mut gen, timeout);
        }
        *gen != seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn least_loaded_pick_is_argmin_over_full_probe() {
        let gauges = [5, 3, 9, 3, 7];
        // Full probe: exact argmin; tie (indices 1 and 3) goes to the
        // first one reached from the start cursor.
        assert_eq!(least_loaded_pick(&gauges, 0, 5), 1);
        assert_eq!(least_loaded_pick(&gauges, 2, 5), 3);
        // Bounded probe only sees its window.
        assert_eq!(least_loaded_pick(&gauges, 2, 2), 3);
        assert_eq!(least_loaded_pick(&gauges, 4, 2), 0, "wraps past the end");
        // Degenerate probes clamp sanely.
        assert_eq!(least_loaded_pick(&gauges, 1, 0), 1);
        assert_eq!(least_loaded_pick(&gauges, 1, 99), 1);
    }

    #[test]
    fn most_loaded_victim_requires_strictly_higher_gauge() {
        let s = SchedShared::new(3, DispatchPolicy::LeastLoaded, true);
        s.publish(0, 4);
        s.publish(1, 4);
        s.publish(2, 4);
        assert_eq!(s.most_loaded_except(0), None, "no victim at equal load");
        s.publish(2, 9);
        assert_eq!(s.most_loaded_except(0), Some(2));
        assert_eq!(s.most_loaded_except(2), None, "the max never steals");
    }

    #[test]
    fn drain_signal_wakes_parked_dispatcher_before_the_timeout() {
        let s = Arc::new(SchedShared::new(1, DispatchPolicy::RoundRobin, false));
        let seen = s.drain_generation();
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s2.note_drain();
        });
        let t0 = Instant::now();
        // The park is bounded by the drain, not the 5 s timeout.
        assert!(s.wait_drain(seen, Duration::from_secs(5)));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "woken by the drain signal, not the timeout"
        );
        t.join().unwrap();
        // A stale generation returns immediately without parking.
        assert!(s.wait_drain(seen, Duration::from_secs(5)));
        // An up-to-date generation with no drain times out false.
        let now = s.drain_generation();
        assert!(!s.wait_drain(now, Duration::from_millis(1)));
    }
}
