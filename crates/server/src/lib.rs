//! # qtls-server — the event-driven web worker
//!
//! A miniature Nginx: one thread, many connections, non-blocking virtual
//! sockets, an HTTP/1.1 subset, and the QTLS modifications of paper §4.2
//! (TLS-ASYNC state, saved read handlers, heuristic polling integration,
//! kernel-bypass async queue). All five offload configurations (`SW`,
//! `QAT+S`, `QAT+A`, `QAT+AH`, `QTLS`) are wired end-to-end and can be
//! exercised against the closed-loop load generators in [`loadgen`].

#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod config_file;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod net;
pub mod sched;
pub mod worker;

pub use cluster::{Cluster, DispatchSnapshot, ShutdownReport};
pub use config_file::{parse_ssl_engine_conf, EngineDirectives};
pub use http::ContentStore;
pub use loadgen::{
    latency_quantile, run_flood_connection, run_keepalive_stream, spawn_clients, spawn_flood,
    ClientConfig, FloodOutcome, FloodStats, LoadStats,
};
pub use metrics::{MetricsConfig, MetricsPlane, StatusSnapshot};
pub use net::{VListener, VSocket};
pub use sched::{least_loaded_pick, DispatchPolicy, SchedShared, DISPATCH_PROBE};
pub use worker::{Worker, WorkerConfig, WorkerStats};
