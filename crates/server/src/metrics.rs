//! The worker's scrapable metrics plane: the `stub_status` page (human
//! and `?format=kv` machine variants), the Prometheus-text `/metrics`
//! endpoint, and the `/flight` recorder dump — all rendered from one
//! [`StatusSnapshot`] the worker refreshes at its sweep boundary plus
//! the engine's live [`qtls_core::obs`] state.
//!
//! Rendering happens only when an endpoint is actually requested; the
//! event loop's per-iteration cost is one snapshot copy. With
//! `qat_metrics off` (the default) the engine's record paths stay
//! single-relaxed-load no-ops and `/metrics` answers 404.

use qtls_core::obs::{
    self, promtext::PromText, EventKind, Phase, TraceSink, CLASS_LIST, SPAN_KIND_LIST,
};
use qtls_core::{HeuristicStats, OffloadEngine};
use qtls_sync::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::worker::WorkerStats;

/// The `ssl_engine { qat_metrics ... }` directive family.
#[derive(Clone, Copy, Debug)]
pub struct MetricsConfig {
    /// `qat_metrics on|off`: serve `/metrics` + `/flight` and enable
    /// phase tracing, histograms and the flight recorder.
    pub enabled: bool,
    /// `qat_metrics_anomaly_p99_us`: freeze the flight recorder when any
    /// merged phase p99 crosses this many microseconds (0 = never).
    pub anomaly_p99_us: u64,
    /// `qat_metrics_flight_capacity`: events retained by the recorder.
    pub flight_capacity: usize,
    /// `qat_anomaly_interval_ms`: wall-clock cadence of the anomaly
    /// check, replacing the historical every-256-iterations count.
    pub anomaly_interval_ms: u64,
    /// `trace_sample_rate`: sample 1-in-N connections for end-to-end
    /// span tracing (0 = off).
    pub trace_sample_rate: u64,
    /// `trace_buffer_spans`: retained-span budget across buffered
    /// connection traces.
    pub trace_buffer_spans: usize,
    /// `trace_export on|off`: serve the `/trace` Chrome-JSON endpoint.
    pub trace_export: bool,
}

/// Default `qat_anomaly_interval_ms`.
pub const ANOMALY_INTERVAL_MS_DEFAULT: u64 = 50;

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: false,
            anomaly_p99_us: 0,
            flight_capacity: obs::FLIGHT_CAPACITY_DEFAULT,
            anomaly_interval_ms: ANOMALY_INTERVAL_MS_DEFAULT,
            trace_sample_rate: 0,
            trace_buffer_spans: obs::TRACE_BUFFER_SPANS_DEFAULT,
            trace_export: true,
        }
    }
}

/// Point-in-time copy of the worker-level statistics every status
/// renderer reads. Refreshed by the worker once per event-loop
/// iteration, so an endpoint served mid-handshake sees the state as of
/// the previous sweep boundary.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatusSnapshot {
    /// The worker's aggregated counters.
    pub stats: WorkerStats,
    /// `TC_alive`: open connections.
    pub tc_alive: u64,
    /// `TC_idle`: established connections with nothing pending.
    pub tc_idle: u64,
    /// `TC_active = TC_alive - TC_idle` (§4.3).
    pub tc_active: u64,
    /// Heuristic-poller statistics, for profiles that run one.
    pub heuristic: Option<HeuristicStats>,
    /// Simulated user/kernel switches spent on notification.
    pub kernel_switches: u64,
    /// The scheduling load gauge as last published: accepted-but-unserved
    /// backlog + un-established connections + staged offload depth.
    pub load: u64,
    /// Dispatch policy code the cluster routes new sockets with:
    /// 0 `round_robin`, 1 `least_loaded`.
    pub dispatch_policy: u64,
}

/// The plane shared between the worker loop (writer) and the in-band
/// HTTP endpoints (readers).
pub struct MetricsPlane {
    cfg: MetricsConfig,
    engine: Option<Arc<OffloadEngine>>,
    status: Mutex<StatusSnapshot>,
    sink: Arc<TraceSink>,
}

impl MetricsPlane {
    /// Build for a worker with `engine` (if its profile offloads).
    pub fn new(cfg: MetricsConfig, engine: Option<Arc<OffloadEngine>>) -> Self {
        MetricsPlane {
            cfg,
            engine,
            status: Mutex::new(StatusSnapshot::default()),
            sink: Arc::new(TraceSink::new(
                cfg.trace_sample_rate,
                cfg.trace_buffer_spans,
            )),
        }
    }

    /// The connection-trace sink (sampling decisions + publishes).
    pub fn trace_sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Is the plane enabled (`qat_metrics on`)?
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The directive configuration.
    pub fn config(&self) -> MetricsConfig {
        self.cfg
    }

    /// Replace the worker-level snapshot (called at the sweep boundary).
    pub fn update(&self, snap: StatusSnapshot) {
        *self.status.lock() = snap;
    }

    /// The last snapshot stored by [`Self::update`].
    pub fn snapshot(&self) -> StatusSnapshot {
        *self.status.lock()
    }

    /// Serve an observability endpoint, or `None` if `path` is not one.
    /// `query` is the raw query string (without the `?`).
    pub fn serve(&self, path: &str, query: &str) -> Option<(u16, &'static str, String)> {
        match path {
            "/stub_status" => {
                let snap = self.snapshot();
                let kv = query.split('&').any(|kv| kv == "format=kv");
                let mut page = if kv {
                    render_stub_status_kv(&snap, self.engine.as_deref())
                } else {
                    render_stub_status(&snap, self.engine.as_deref())
                };
                if self.sink.enabled() {
                    page.push_str(&render_trace_attribution(&self.sink, kv));
                }
                Some((200, "OK", page))
            }
            "/metrics" => {
                if self.cfg.enabled {
                    Some((200, "OK", self.render_metrics()))
                } else {
                    Some((404, "Not Found", String::new()))
                }
            }
            "/flight" => {
                if self.cfg.enabled {
                    let page = match &self.engine {
                        Some(engine) => engine.obs().recorder().render_dump(),
                        None => "flight: 0 recent events\n".to_string(),
                    };
                    Some((200, "OK", page))
                } else {
                    Some((404, "Not Found", String::new()))
                }
            }
            "/trace" => {
                if self.cfg.trace_export && self.sink.enabled() {
                    Some((200, "OK", obs::chrome_trace_json(&self.sink.traces())))
                } else {
                    Some((404, "Not Found", String::new()))
                }
            }
            _ => None,
        }
    }

    /// Compare every merged phase p99 against the configured anomaly
    /// threshold and freeze the flight recorder on the worst crossing
    /// (`a` = phase index × classes + class index, `b` = p99 ns).
    /// Called periodically by the worker; a no-op when the threshold is
    /// 0 or the plane is disabled.
    pub fn check_anomaly(&self) {
        if !self.cfg.enabled || self.cfg.anomaly_p99_us == 0 {
            return;
        }
        let Some(engine) = &self.engine else {
            return;
        };
        let threshold_ns = self.cfg.anomaly_p99_us.saturating_mul(1000);
        let mut worst: Option<(u64, u64)> = None;
        for phase in Phase::ALL {
            for class in CLASS_LIST {
                let p99 = engine.obs().merged(phase, class).quantile(0.99);
                if p99 > threshold_ns && worst.is_none_or(|(_, w)| p99 > w) {
                    let code = (phase.index() * obs::CLASSES + obs::class_index(class)) as u64;
                    worst = Some((code, p99));
                }
            }
        }
        if let Some((code, p99)) = worst {
            engine.obs().recorder().freeze(0, code, p99);
            // Exemplar linkage: attach the slowest sampled connection's
            // span tree so the spike comes with a concrete trace.
            if let Some(trace) = self.sink.slowest() {
                engine.obs().recorder().freeze_trace(trace);
            }
        }
    }

    /// Render the Prometheus text page: merged + per-shard phase
    /// histograms and every worker/engine/device counter. Every family
    /// name emitted here is in [`obs::registry::METRIC_NAMES`].
    pub fn render_metrics(&self) -> String {
        let snap = self.snapshot();
        let mut page = PromText::new();

        page.header(
            "qtls_metrics_enabled",
            "gauge",
            "1 when the qat_metrics directive enabled the observability plane.",
        );
        page.sample("qtls_metrics_enabled", &[], self.cfg.enabled as u64);

        render_worker_section(&mut page, &snap);
        if let Some(heuristic) = &snap.heuristic {
            render_poller_section(&mut page, heuristic);
        }
        if let Some(engine) = &self.engine {
            render_engine_section(&mut page, engine);
        }
        if self.sink.enabled() {
            render_trace_section(&mut page, &self.sink);
        }
        page.finish()
    }
}

fn render_trace_section(page: &mut PromText, sink: &TraceSink) {
    page.header(
        "qtls_trace_sample_rate",
        "gauge",
        "Connection tracing samples 1-in-N connections (0 = off).",
    );
    page.sample("qtls_trace_sample_rate", &[], sink.sample_rate());
    let counters: [(&str, &str, u64); 5] = [
        (
            "qtls_trace_sampled_total",
            "Connections sampled for end-to-end span tracing.",
            sink.sampled(),
        ),
        (
            "qtls_trace_spans_total",
            "Spans published across sampled connections.",
            sink.spans_published(),
        ),
        (
            "qtls_trace_dropped_total",
            "Traces evicted from the buffer to stay under trace_buffer_spans.",
            sink.dropped(),
        ),
        (
            "qtls_trace_wall_us_total",
            "Sum of sampled-connection wall times, microseconds.",
            sink.wall_ns_total() / 1_000,
        ),
        (
            "qtls_trace_covered_us_total",
            "Sum of stage durations attributed across sampled connections, microseconds.",
            sink.covered_ns_total() / 1_000,
        ),
    ];
    for (name, help, value) in counters {
        page.header(name, "counter", help);
        page.sample(name, &[], value);
    }
    page.header(
        "qtls_trace_stage_us",
        "gauge",
        "Per-stage latency attribution across sampled connections, microseconds.",
    );
    for kind in SPAN_KIND_LIST {
        let snap = sink.stage_snapshot(kind);
        let count = snap.count();
        let mean_us = if count == 0 {
            0
        } else {
            snap.sum / count / 1_000
        };
        let labels_mean = [("stage", kind.name()), ("stat", "mean")];
        page.sample("qtls_trace_stage_us", &labels_mean, mean_us);
        let labels_p99 = [("stage", kind.name()), ("stat", "p99")];
        page.sample(
            "qtls_trace_stage_us",
            &labels_p99,
            snap.quantile(0.99) / 1_000,
        );
    }
}

/// Render the latency-attribution table appended to `stub_status` when
/// tracing is on: one row per stage (count / mean / p99, µs) plus a
/// summary row whose covered-vs-wall ratio is the sum check — stage
/// durations of every published trace must account for its root wall
/// time (idle gaps are attributed explicitly, so the two match up to
/// integer truncation).
pub fn render_trace_attribution(sink: &TraceSink, kv: bool) -> String {
    let mut page = String::new();
    let wall_us = sink.wall_ns_total() / 1_000;
    let covered_us = sink.covered_ns_total() / 1_000;
    if kv {
        let _ = writeln!(page, "trace_sample_rate {}", sink.sample_rate());
        let _ = writeln!(page, "trace_sampled {}", sink.sampled());
        let _ = writeln!(page, "trace_spans {}", sink.spans_published());
        let _ = writeln!(page, "trace_dropped {}", sink.dropped());
        let _ = writeln!(page, "trace_wall_us {wall_us}");
        let _ = writeln!(page, "trace_covered_us {covered_us}");
    } else {
        let _ = writeln!(
            page,
            "trace: rate {} sampled {} spans {} dropped {} wall-us {} covered-us {}",
            sink.sample_rate(),
            sink.sampled(),
            sink.spans_published(),
            sink.dropped(),
            wall_us,
            covered_us,
        );
    }
    for kind in SPAN_KIND_LIST {
        let snap = sink.stage_snapshot(kind);
        let count = snap.count();
        let mean_us = if count == 0 {
            0
        } else {
            snap.sum / count / 1_000
        };
        let p99_us = snap.quantile(0.99) / 1_000;
        if kv {
            let name = kind.name();
            let _ = writeln!(page, "trace_stage_{name}_count {count}");
            let _ = writeln!(page, "trace_stage_{name}_mean_us {mean_us}");
            let _ = writeln!(page, "trace_stage_{name}_p99_us {p99_us}");
        } else {
            let _ = writeln!(
                page,
                "trace stage {}: count {} mean-us {} p99-us {}",
                kind.name(),
                count,
                mean_us,
                p99_us,
            );
        }
    }
    page
}

fn render_worker_section(page: &mut PromText, snap: &StatusSnapshot) {
    let gauges: [(&str, &str, u64); 5] = [
        (
            "qtls_worker_connections_active",
            "TC_active: connections handshaking or with pending work.",
            snap.tc_active,
        ),
        (
            "qtls_worker_connections_alive",
            "TC_alive: all live connections (idle + active).",
            snap.tc_alive,
        ),
        (
            "qtls_worker_connections_idle",
            "TC_idle: established connections with no pending work.",
            snap.tc_idle,
        ),
        (
            "qtls_worker_load",
            "Scheduling load gauge: backlog + un-established connections + staged offload depth.",
            snap.load,
        ),
        (
            "qtls_dispatch_policy",
            "Dispatch policy routing new sockets: 0 round_robin, 1 least_loaded.",
            snap.dispatch_policy,
        ),
    ];
    for (name, help, value) in gauges {
        page.header(name, "gauge", help);
        page.sample(name, &[], value);
    }
    let counters: [(&str, &str, u64); 21] = [
        (
            "qtls_worker_steals_total",
            "Queued sockets stolen from a more-loaded peer's accept backlog.",
            snap.stats.steals,
        ),
        (
            "qtls_worker_handshakes_total",
            "Completed TLS handshakes.",
            snap.stats.handshakes,
        ),
        (
            "qtls_worker_resumed_handshakes_total",
            "Of which abbreviated (session resumption).",
            snap.stats.resumed,
        ),
        (
            "qtls_worker_resume_miss_total",
            "Handshakes where offered resumption state could not be honoured (fell back to full).",
            snap.stats.resume_miss,
        ),
        (
            "qtls_worker_requests_total",
            "HTTP requests served.",
            snap.stats.requests,
        ),
        (
            "qtls_worker_bytes_sent_total",
            "Application bytes sent (HTTP responses, pre-encryption).",
            snap.stats.bytes_sent,
        ),
        (
            "qtls_worker_bytes_received_total",
            "Application bytes received (HTTP requests, post-decryption).",
            snap.stats.bytes_received,
        ),
        (
            "qtls_worker_record_handoffs_total",
            "Connections handed from the handshake control plane to the batched record codec.",
            snap.stats.record_handoffs,
        ),
        (
            "qtls_worker_async_jobs_total",
            "Fiber jobs that paused on a crypto offload at least once.",
            snap.stats.async_jobs,
        ),
        (
            "qtls_worker_resumptions_total",
            "Offload-job resumptions processed.",
            snap.stats.resumptions,
        ),
        (
            "qtls_worker_errors_total",
            "TLS protocol errors.",
            snap.stats.errors,
        ),
        (
            "qtls_worker_kernel_switches_total",
            "Simulated user/kernel switches spent on async notification.",
            snap.kernel_switches,
        ),
        (
            "qtls_worker_accepts_total",
            "Connections accepted off the listener backlog.",
            snap.stats.accepted,
        ),
        (
            "qtls_admission_challenges_total",
            "Retry-token challenges sent to token-less ClientHellos under overload.",
            snap.stats.challenges_sent,
        ),
        (
            "qtls_admission_tokens_verified_total",
            "Retry tokens presented and verified (admitted past the gate).",
            snap.stats.tokens_verified,
        ),
        (
            "qtls_admission_tokens_rejected_total",
            "Retry tokens rejected (stale, spoofed, or malformed frames).",
            snap.stats.tokens_rejected,
        ),
        (
            "qtls_admission_accept_sheds_total",
            "Connections shed at the listener's full accept backlog.",
            snap.stats.accept_sheds,
        ),
        (
            "qtls_admission_overloads_total",
            "Transitions into overload mode (inflight handshakes crossed the watermark).",
            snap.stats.overload_entered,
        ),
        (
            "qtls_worker_closed_total",
            "Connections closed and reaped by the worker.",
            snap.stats.closed,
        ),
        (
            "qtls_worker_ring_retries_total",
            "Jobs rescheduled after a full request ring (event-loop backpressure).",
            snap.stats.retries,
        ),
        (
            "qtls_worker_cancelled_submits_total",
            "Staged submissions cancelled at shutdown before reaching a ring.",
            snap.stats.cancelled_submits,
        ),
    ];
    for (name, help, value) in counters {
        page.header(name, "counter", help);
        page.sample(name, &[], value);
    }
}

fn render_poller_section(page: &mut PromText, stats: &HeuristicStats) {
    page.header(
        "qtls_poll_fired_total",
        "counter",
        "Heuristic polls fired, by trigger rule.",
    );
    for (trigger, count) in [
        ("efficiency", stats.efficiency_polls),
        ("timeliness", stats.timeliness_polls),
        ("failover", stats.failover_polls),
    ] {
        page.sample("qtls_poll_fired_total", &[("trigger", trigger)], count);
    }
    let counters: [(&str, &str, u64); 3] = [
        (
            "qtls_poll_wasted_total",
            "Swept shards that retrieved nothing (per-shard wasted polls, paper section 5.6).",
            stats.empty_polls,
        ),
        (
            "qtls_poll_shards_swept_total",
            "Shards swept across all fired polls.",
            stats.shards_swept,
        ),
        (
            "qtls_poll_responses_total",
            "Responses retrieved by the heuristic poller.",
            stats.responses,
        ),
    ];
    for (name, help, value) in counters {
        page.header(name, "counter", help);
        page.sample(name, &[], value);
    }
}

fn render_engine_section(page: &mut PromText, engine: &Arc<OffloadEngine>) {
    let eobs = engine.obs();

    // Phase latency quantiles: per shard and merged, as gauges (the
    // full distribution follows as a histogram family).
    page.header(
        "qtls_phase_latency_ns",
        "gauge",
        "Phase latency quantile in ns (log-linear buckets, <=3.125% relative error).",
    );
    const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];
    for phase in Phase::ALL {
        for class in CLASS_LIST {
            let merged = eobs.merged(phase, class);
            for (q_label, q) in QUANTILES {
                page.sample(
                    "qtls_phase_latency_ns",
                    &[
                        ("phase", phase.name()),
                        ("class", obs::class_name(class)),
                        ("shard", "merged"),
                        ("quantile", q_label),
                    ],
                    merged.quantile(q),
                );
            }
            for i in 0..eobs.shard_count() {
                let shard_snap = eobs.shard(i).snapshot(phase, class);
                let shard = i.to_string();
                for (q_label, q) in QUANTILES {
                    page.sample(
                        "qtls_phase_latency_ns",
                        &[
                            ("phase", phase.name()),
                            ("class", obs::class_name(class)),
                            ("shard", &shard),
                            ("quantile", q_label),
                        ],
                        shard_snap.quantile(q),
                    );
                }
            }
        }
    }

    // Merged distributions as Prometheus histograms, plus max/overflow.
    page.header(
        "qtls_phase_latency_hist_ns",
        "histogram",
        "Merged phase latency distribution in ns.",
    );
    for phase in Phase::ALL {
        for class in CLASS_LIST {
            let merged = eobs.merged(phase, class);
            obs::render_phase_histogram(page, phase, class, &merged);
        }
    }
    page.header(
        "qtls_phase_latency_max_ns",
        "gauge",
        "Largest phase latency recorded, ns.",
    );
    page.header(
        "qtls_phase_overflow_total",
        "counter",
        "Samples beyond the largest histogram bucket (~68.7 s).",
    );
    for phase in Phase::ALL {
        for class in CLASS_LIST {
            let merged = eobs.merged(phase, class);
            let labels = [("phase", phase.name()), ("class", obs::class_name(class))];
            page.sample("qtls_phase_latency_max_ns", &labels, merged.max);
            page.sample("qtls_phase_overflow_total", &labels, merged.overflow);
        }
    }

    // Shard occupancy.
    page.header(
        "qtls_shard_count",
        "gauge",
        "Engine shards (QAT instance pairs) this worker submits to.",
    );
    page.sample("qtls_shard_count", &[], engine.shard_count() as u64);
    page.header(
        "qtls_shard_inflight",
        "gauge",
        "Inflight requests on the shard's rings.",
    );
    page.header(
        "qtls_shard_asym_inflight",
        "gauge",
        "Of which asymmetric operations.",
    );
    for i in 0..engine.shard_count() {
        let shard = i.to_string();
        let labels = [("shard", shard.as_str())];
        page.sample("qtls_shard_inflight", &labels, engine.shard_inflight(i));
        page.sample(
            "qtls_shard_asym_inflight",
            &labels,
            engine.shard_asym_inflight(i),
        );
    }
    page.header(
        "qtls_ring_full_retries_total",
        "counter",
        "Submissions retried after a full request ring, all shards.",
    );
    page.sample(
        "qtls_ring_full_retries_total",
        &[],
        engine.ring_full_retries(),
    );

    // Per-shard submit pipeline.
    let submit_families: [(&str, &str, &str); 8] = [
        (
            "qtls_submit_flushes_total",
            "counter",
            "Flushes that published at least one request.",
        ),
        (
            "qtls_submit_flushed_requests_total",
            "counter",
            "Requests published through batched flushes.",
        ),
        (
            "qtls_submit_deferred_total",
            "counter",
            "Requests a flush deferred to the next sweep (ring full).",
        ),
        (
            "qtls_submit_holds_total",
            "counter",
            "Sweeps where the adaptive policy held a shallow batch.",
        ),
        (
            "qtls_submit_forced_flushes_total",
            "counter",
            "Held batches published because the hold bound expired.",
        ),
        (
            "qtls_submit_bypassed_total",
            "counter",
            "Requests that bypassed staging under light load.",
        ),
        (
            "qtls_submit_max_depth",
            "gauge",
            "Deepest batch published by one flush.",
        ),
        (
            "qtls_submit_ewma_depth_milli",
            "gauge",
            "EWMA of published flush depth, milli-requests.",
        ),
    ];
    for (name, kind, help) in submit_families {
        page.header(name, kind, help);
        for i in 0..engine.shard_count() {
            let Some(queue) = engine.shard_submit_queue(i) else {
                continue;
            };
            let qs = queue.stats().snapshot();
            let shard = i.to_string();
            let labels = [("shard", shard.as_str())];
            let value = match name {
                "qtls_submit_flushes_total" => qs.flushes,
                "qtls_submit_flushed_requests_total" => qs.flushed_requests,
                "qtls_submit_deferred_total" => qs.deferred,
                "qtls_submit_holds_total" => qs.holds,
                "qtls_submit_forced_flushes_total" => qs.forced_flushes,
                "qtls_submit_bypassed_total" => qs.bypasses,
                "qtls_submit_max_depth" => qs.max_depth,
                _ => qs.ewma_depth_milli,
            };
            page.sample(name, &labels, value);
        }
    }

    // Device firmware counters, per shard instance.
    let qat_counters: [(&str, &str); 5] = [
        (
            "qtls_qat_submitted_total",
            "Requests accepted onto request rings.",
        ),
        (
            "qtls_qat_ring_full_total",
            "Submissions rejected by a full request ring.",
        ),
        (
            "qtls_qat_doorbells_total",
            "Ring-cursor publishes (doorbell writes).",
        ),
        ("qtls_qat_polled_total", "Responses retrieved by polling."),
        (
            "qtls_qat_resp_stalls_total",
            "Device stalls on a full response ring.",
        ),
    ];
    for (name, help) in qat_counters {
        page.header(name, "counter", help);
        for i in 0..engine.shard_count() {
            let fw = engine.shard_instance(i).fw_counters();
            let shard = i.to_string();
            let labels = [("shard", shard.as_str())];
            let value = match name {
                "qtls_qat_submitted_total" => fw.submitted.load(Ordering::Relaxed),
                "qtls_qat_ring_full_total" => fw.ring_full.load(Ordering::Relaxed),
                "qtls_qat_doorbells_total" => fw.doorbells.load(Ordering::Relaxed),
                "qtls_qat_polled_total" => fw.polled.load(Ordering::Relaxed),
                _ => fw.resp_stalls.load(Ordering::Relaxed),
            };
            page.sample(name, &labels, value);
        }
    }
    page.header(
        "qtls_qat_completed_total",
        "counter",
        "Completed operations, by shard and op class.",
    );
    for i in 0..engine.shard_count() {
        let fw = engine.shard_instance(i).fw_counters();
        let shard = i.to_string();
        for (class, value) in [
            ("asym", fw.asym.load(Ordering::Relaxed)),
            ("cipher", fw.cipher.load(Ordering::Relaxed)),
            ("prf", fw.prf.load(Ordering::Relaxed)),
        ] {
            page.sample(
                "qtls_qat_completed_total",
                &[("shard", shard.as_str()), ("class", class)],
                value,
            );
        }
    }

    // Device-wide rebalance counter (shared by every shard instance, so
    // it is rendered once, unlabelled).
    if engine.shard_count() > 0 {
        page.header(
            "qtls_qat_rebalances_total",
            "counter",
            "Quiescent ring pairs migrated between endpoints by runtime shard rebalancing.",
        );
        page.sample(
            "qtls_qat_rebalances_total",
            &[],
            engine
                .shard_instance(0)
                .fw_counters()
                .rebalances
                .load(Ordering::Relaxed),
        );
    }

    // Flight-recorder event counts (monotonic; survive ring overwrite).
    page.header(
        "qtls_flight_events_total",
        "counter",
        "Structured pipeline events recorded, by kind.",
    );
    for kind in EventKind::ALL {
        page.sample(
            "qtls_flight_events_total",
            &[("kind", kind.name())],
            eobs.recorder().count(kind),
        );
    }
}

/// Render the human `stub_status` page. The original single-instance
/// lines keep their exact historical shape; workers whose engine stages
/// submissions per shard append one aggregate `shards:` line plus a row
/// per shard.
pub fn render_stub_status(snap: &StatusSnapshot, engine: Option<&OffloadEngine>) -> String {
    let mut page = format!(
        "Active connections: {}\n\
         server accepts handled requests\n {} {} {}\n\
         TLS: alive {} idle {} active {} async-jobs {} resumptions {}\n\
         bytes: sent {} received {} handoffs {}\n\
         submit: flushes {} flushed {} max-depth {} deferred {} \
         holds {} forced {} bypassed {} ewma-depth {}.{:03}\n",
        snap.tc_alive,
        snap.stats.handshakes + snap.stats.errors,
        snap.stats.handshakes,
        snap.stats.requests,
        snap.tc_alive,
        snap.tc_idle,
        snap.tc_active,
        snap.stats.async_jobs,
        snap.stats.resumptions,
        snap.stats.bytes_sent,
        snap.stats.bytes_received,
        snap.stats.record_handoffs,
        snap.stats.flushes,
        snap.stats.flushed_requests,
        snap.stats.max_flush_depth,
        snap.stats.deferred_submits,
        snap.stats.submit_holds,
        snap.stats.forced_flushes,
        snap.stats.bypassed_submits,
        snap.stats.ewma_flush_depth_milli / 1000,
        snap.stats.ewma_flush_depth_milli % 1000,
    );
    let _ = writeln!(
        page,
        "admission: accepted {} challenges {} verified {} rejected {} \
         sheds {} overloads {}",
        snap.stats.accepted,
        snap.stats.challenges_sent,
        snap.stats.tokens_verified,
        snap.stats.tokens_rejected,
        snap.stats.accept_sheds,
        snap.stats.overload_entered,
    );
    let _ = writeln!(
        page,
        "sched: load {} steals {} policy {}",
        snap.load, snap.stats.steals, snap.dispatch_policy,
    );
    if let Some(engine) = engine {
        let queues: Vec<(usize, Arc<qtls_core::SubmitQueue>)> = (0..engine.shard_count())
            .filter_map(|i| engine.shard_submit_queue(i).map(|q| (i, q)))
            .collect();
        if !queues.is_empty() {
            let mut rows = String::new();
            let mut holds = 0u64;
            let mut forced = 0u64;
            for (i, queue) in &queues {
                let qs = queue.stats().snapshot();
                holds += qs.holds;
                forced += qs.forced_flushes;
                let _ = writeln!(
                    rows,
                    "shard {}: inflight {} ewma-depth {}.{:03} holds {} forced {}",
                    i,
                    engine.shard_inflight(*i),
                    qs.ewma_depth_milli / 1000,
                    qs.ewma_depth_milli % 1000,
                    qs.holds,
                    qs.forced_flushes,
                );
            }
            // The aggregate line is computed from the same sources the
            // per-shard rows read, so their totals always match.
            let _ = writeln!(
                page,
                "shards: count {} inflight {} holds {} forced {}",
                queues.len(),
                engine.inflight().total(),
                holds,
                forced,
            );
            page.push_str(&rows);
        }
    }
    page
}

/// Render the machine-parseable `stub_status?format=kv` variant: one
/// `key value` pair per line. The keys are a strict superset of the
/// numeric fields of the human page (pinned by an invariant test), plus
/// extra worker counters the human page omits.
pub fn render_stub_status_kv(snap: &StatusSnapshot, engine: Option<&OffloadEngine>) -> String {
    let mut page = String::new();
    let mut kv = |k: &str, v: u64| {
        let _ = writeln!(page, "{k} {v}");
    };
    kv("active_connections", snap.tc_alive);
    kv("accepts", snap.stats.handshakes + snap.stats.errors);
    kv("handled", snap.stats.handshakes);
    kv("requests", snap.stats.requests);
    kv("tls_alive", snap.tc_alive);
    kv("tls_idle", snap.tc_idle);
    kv("tls_active", snap.tc_active);
    kv("async_jobs", snap.stats.async_jobs);
    kv("resumptions", snap.stats.resumptions);
    kv("bytes_sent", snap.stats.bytes_sent);
    kv("bytes_received", snap.stats.bytes_received);
    kv("record_handoffs", snap.stats.record_handoffs);
    kv("submit_flushes", snap.stats.flushes);
    kv("submit_flushed", snap.stats.flushed_requests);
    kv("submit_max_depth", snap.stats.max_flush_depth);
    kv("submit_deferred", snap.stats.deferred_submits);
    kv("submit_holds", snap.stats.submit_holds);
    kv("submit_forced", snap.stats.forced_flushes);
    kv("submit_bypassed", snap.stats.bypassed_submits);
    kv("submit_ewma_depth_milli", snap.stats.ewma_flush_depth_milli);
    kv("admission_accepted", snap.stats.accepted);
    kv("admission_challenges", snap.stats.challenges_sent);
    kv("admission_tokens_verified", snap.stats.tokens_verified);
    kv("admission_tokens_rejected", snap.stats.tokens_rejected);
    kv("admission_accept_sheds", snap.stats.accept_sheds);
    kv("admission_overloads", snap.stats.overload_entered);
    kv("sched_load", snap.load);
    kv("sched_steals", snap.stats.steals);
    kv("sched_policy", snap.dispatch_policy);
    // Extras the human page does not carry.
    kv("handshakes", snap.stats.handshakes);
    kv("resumed_handshakes", snap.stats.resumed);
    kv("resume_miss", snap.stats.resume_miss);
    kv("errors", snap.stats.errors);
    kv("closed", snap.stats.closed);
    kv("retries", snap.stats.retries);
    kv("cancelled_submits", snap.stats.cancelled_submits);
    kv("kernel_switches", snap.kernel_switches);
    if let Some(h) = &snap.heuristic {
        kv("poll_efficiency", h.efficiency_polls);
        kv("poll_timeliness", h.timeliness_polls);
        kv("poll_failover", h.failover_polls);
        kv("poll_wasted", h.empty_polls);
        kv("poll_responses", h.responses);
        kv("poll_shards_swept", h.shards_swept);
    }
    if let Some(engine) = engine {
        let queues: Vec<(usize, Arc<qtls_core::SubmitQueue>)> = (0..engine.shard_count())
            .filter_map(|i| engine.shard_submit_queue(i).map(|q| (i, q)))
            .collect();
        if !queues.is_empty() {
            let mut holds = 0u64;
            let mut forced = 0u64;
            let mut rows = String::new();
            for (i, queue) in &queues {
                let qs = queue.stats().snapshot();
                holds += qs.holds;
                forced += qs.forced_flushes;
                let _ = writeln!(rows, "shard{i}_inflight {}", engine.shard_inflight(*i));
                let _ = writeln!(rows, "shard{i}_ewma_depth_milli {}", qs.ewma_depth_milli);
                let _ = writeln!(rows, "shard{i}_holds {}", qs.holds);
                let _ = writeln!(rows, "shard{i}_forced {}", qs.forced_flushes);
            }
            let _ = writeln!(page, "shards_count {}", queues.len());
            let _ = writeln!(page, "shards_inflight {}", engine.inflight().total());
            let _ = writeln!(page, "shards_holds {holds}");
            let _ = writeln!(page, "shards_forced {forced}");
            page.push_str(&rows);
        }
    }
    page
}
