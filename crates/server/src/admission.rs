//! Handshake-flood admission control (the QFAM design): when a worker
//! is over its inflight-handshake watermark, a brand-new ClientHello is
//! not fed to the TLS engine — the worker mints a stateless retry token
//! (HMAC over the client address + a coarse timestamp, keyed by the
//! cluster's rotating ticket-key ring; see [`qtls_tls::admission`]) and
//! closes. A legitimate client round-trips the token on its reconnect
//! and is admitted before the server spends any asymmetric offload
//! work; a spoofing flooder never completes the round trip.
//!
//! The token travels in a tiny pre-TLS frame. TLS record content types
//! live in 0x14..=0x17, so the 0xAD magic byte can never be confused
//! with a ClientHello — one byte of lookahead classifies a connection's
//! first bytes as "admission frame" or "raw TLS".
//!
//! ```text
//! server -> client   [0xAD, 0x01, len_hi, len_lo, token...]   challenge
//! client -> server   [0xAD, 0x02, len_hi, len_lo, token...]   retry
//! ```

use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// First byte of an admission frame (TLS records start 0x14..=0x17).
pub const FRAME_MAGIC: u8 = 0xAD;
/// Frame kind: server challenge carrying a freshly minted token.
pub const FRAME_CHALLENGE: u8 = 0x01;
/// Frame kind: client retry presenting a previously issued token.
pub const FRAME_TOKEN: u8 = 0x02;
/// Frame header: magic, kind, u16 token length.
const FRAME_HEADER: usize = 4;
/// Cap on the token length field — far above any real token, just a
/// guard against absurd allocations from hostile length prefixes.
const MAX_TOKEN_LEN: usize = 256;

/// The `admission_*` directive family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// `admission_control on|off`: challenge token-less new
    /// ClientHellos while over the watermark.
    pub enabled: bool,
    /// `admission_watermark N`: inflight (not-yet-established)
    /// handshakes at which the worker enters overload mode.
    pub watermark: u64,
    /// `admission_accepts_per_sweep N`: accepts one event-loop
    /// iteration takes before returning to in-flight work.
    pub accepts_per_sweep: usize,
    /// `admission_backlog_cap N`: per-listener accept backlog bound;
    /// connections beyond it are shed at accept with a counter.
    pub backlog_cap: usize,
    /// `admission_token_lifetime N` (seconds): how long a minted retry
    /// token verifies.
    pub token_lifetime: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            watermark: 64,
            accepts_per_sweep: 64,
            backlog_cap: crate::net::DEFAULT_BACKLOG,
            token_lifetime: Duration::from_secs(30),
        }
    }
}

/// Coarse wall-clock seconds for token minting/verification. All
/// workers share the same clock, so a token minted on worker A verifies
/// on worker B.
pub fn coarse_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn frame(kind: u8, token: &[u8]) -> Vec<u8> {
    debug_assert!(token.len() <= MAX_TOKEN_LEN);
    let mut out = Vec::with_capacity(FRAME_HEADER + token.len());
    out.push(FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(token.len() as u16).to_be_bytes());
    out.extend_from_slice(token);
    out
}

/// Encode a server→client challenge frame carrying `token`.
pub fn challenge_frame(token: &[u8]) -> Vec<u8> {
    frame(FRAME_CHALLENGE, token)
}

/// Encode a client→server retry frame presenting `token`.
pub fn token_frame(token: &[u8]) -> Vec<u8> {
    frame(FRAME_TOKEN, token)
}

/// Result of classifying a connection's buffered first bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameParse {
    /// Does not start with the magic byte: raw TLS (a ClientHello).
    NotAFrame,
    /// Starts like a frame but the full token has not arrived yet.
    Incomplete,
    /// The header is hostile (oversized length, unknown kind).
    Malformed,
    /// A complete frame.
    Frame {
        /// [`FRAME_CHALLENGE`] or [`FRAME_TOKEN`].
        kind: u8,
        /// The carried token bytes.
        token: Vec<u8>,
        /// Bytes the frame occupied; anything after belongs to TLS.
        consumed: usize,
    },
}

/// Classify `buf` (a connection's buffered first bytes).
pub fn parse_frame(buf: &[u8]) -> FrameParse {
    if buf.first() != Some(&FRAME_MAGIC) {
        return FrameParse::NotAFrame;
    }
    if buf.len() < FRAME_HEADER {
        return FrameParse::Incomplete;
    }
    let kind = buf[1];
    if kind != FRAME_CHALLENGE && kind != FRAME_TOKEN {
        return FrameParse::Malformed;
    }
    let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
    if len > MAX_TOKEN_LEN {
        return FrameParse::Malformed;
    }
    if buf.len() < FRAME_HEADER + len {
        return FrameParse::Incomplete;
    }
    FrameParse::Frame {
        kind,
        token: buf[FRAME_HEADER..FRAME_HEADER + len].to_vec(),
        consumed: FRAME_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let token = vec![7u8; 24];
        for (encode, kind) in [
            (challenge_frame as fn(&[u8]) -> Vec<u8>, FRAME_CHALLENGE),
            (token_frame, FRAME_TOKEN),
        ] {
            let wire = encode(&token);
            match parse_frame(&wire) {
                FrameParse::Frame {
                    kind: k,
                    token: t,
                    consumed,
                } => {
                    assert_eq!(k, kind);
                    assert_eq!(t, token);
                    assert_eq!(consumed, wire.len());
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_stay_unconsumed() {
        let mut wire = token_frame(&[1, 2, 3]);
        wire.extend_from_slice(&[0x16, 0x03, 0x03]); // a TLS record follows
        match parse_frame(&wire) {
            FrameParse::Frame { consumed, .. } => assert_eq!(consumed, wire.len() - 3),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn split_reads_report_incomplete() {
        let wire = challenge_frame(&[9u8; 24]);
        for cut in 1..wire.len() {
            assert_eq!(
                parse_frame(&wire[..cut]),
                FrameParse::Incomplete,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn tls_records_are_not_frames() {
        assert_eq!(
            parse_frame(&[0x16, 0x03, 0x03, 0x00]),
            FrameParse::NotAFrame
        );
        assert_eq!(parse_frame(&[]), FrameParse::NotAFrame);
    }

    #[test]
    fn hostile_headers_are_malformed_not_allocations() {
        assert_eq!(
            parse_frame(&[0xAD, 0x01, 0xFF, 0xFF]),
            FrameParse::Malformed
        );
        assert_eq!(
            parse_frame(&[0xAD, 0x7F, 0x00, 0x00]),
            FrameParse::Malformed
        );
    }
}
