#!/usr/bin/env bash
# Hermetic tier-1 verify: build + test with zero registry access, then
# assert that no non-workspace dependency has crept into any feature
# set. Run from anywhere; exits non-zero on the first violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo "== property sweeps (--features proptest) =="
# The in-repo prop harness scales every property to its full case
# count under this feature; still offline and deterministic.
cargo test -q --offline --features proptest \
  --test proptest_crypto --test proptest_framework --test proptest_tls

echo "== figures smoke run =="
# Every figure generator must still run end to end (tiny simulated
# window; the numbers are noise, the exercise is the point).
cargo run --release --offline -p qtls-sim --bin figures -- smoke > /dev/null

echo "== sharding figure + bench smoke =="
# The sharding ablation must produce all three shard-count series in
# SMOKE fidelity, and the bench group must emit a parseable throughput
# row for every shard count (the >=1.7x scaling claim itself is
# verified at full fidelity and recorded in EXPERIMENTS.md).
sharding_fig=$(cargo run --release --offline -p qtls-sim --bin figures -- smoke sharding)
for series in "1-shard K CPS" "2-shard K CPS" "4-shard K CPS"; do
  if ! grep -qF "$series" <<< "$sharding_fig"; then
    echo "sharding figure missing series: $series" >&2
    exit 1
  fi
done
echo "ok: sharding figure emits all shard-count series"
sharding_bench=$(cargo bench --offline -p qtls-bench --bench framework -- sharding)
for case in submit_only_64/shards1 saturated_roundtrip_64/shards1 \
            saturated_roundtrip_64/shards2 saturated_roundtrip_64/shards4; do
  if ! grep -F "sharding/$case" <<< "$sharding_bench" | grep -q 'elem/s'; then
    echo "bench sharding/$case missing or lacks an elem/s throughput row" >&2
    exit 1
  fi
done
echo "ok: bench sharding rows parse with elem/s throughput"

echo "== resumption figure + cross-worker test + bench smoke =="
# The resumption ablation must emit both shared and per-worker series
# (CPS and miss-rate) in SMOKE fidelity, the cluster test proving a
# ticket minted on worker A resumes on worker B must actually run in the
# offline suite, and the handshake bench must reach its resumed-vs-full
# CPS verdict (>= 2x asserted inside the bench).
resumption_fig=$(cargo run --release --offline -p qtls-sim --bin figures -- smoke resumption)
for series in "shared K CPS" "shared miss %" "per-worker K CPS" "per-worker miss %"; do
  if ! grep -qF "$series" <<< "$resumption_fig"; then
    echo "resumption figure missing series: $series" >&2
    exit 1
  fi
done
echo "ok: resumption figure emits shared and per-worker series"
cross_worker=$(cargo test --offline -p qtls-server --lib \
  ticket_minted_on_worker_a_resumes_on_worker_b 2>&1)
if ! grep -q "test result: ok. 1 passed" <<< "$cross_worker"; then
  echo "cross-worker resumption test did not run and pass" >&2
  exit 1
fi
echo "ok: cross-worker resumption test passes (resume on worker B, miss 0)"
resumption_bench=$(cargo bench --offline -p qtls-bench --bench handshake -- resumption)
if ! grep -q "resumption_speedup: PASS" <<< "$resumption_bench"; then
  echo "resumption bench did not print its PASS verdict" >&2
  exit 1
fi
echo "ok: resumed CPS at least 2x full-handshake CPS"

echo "== bulk data-plane figure + bench smoke =="
# The record data plane's ablation (DESIGN.md §13) must emit all four
# series in SMOKE fidelity, the bench group must report byte throughput
# for both the roundtrip and publish-only rows, and the batched-vs-
# per-record verdict (>= 1.5x at depth 16, asserted inside the bench)
# must be reached.
bulk_fig=$(cargo run --release --offline -p qtls-sim --bin figures -- smoke bulk)
for series in "SW" "per-record" "pinned-16" "batched-16"; do
  if ! grep -qF "$series" <<< "$bulk_fig"; then
    echo "bulk figure missing series: $series" >&2
    exit 1
  fi
done
echo "ok: bulk figure emits all data-plane series"
bulk_bench=$(cargo bench --offline -p qtls-bench --bench framework -- bulk_transfer)
for case in per_record_depth16 batched_depth16 \
            publish_only/per_record publish_only/batched; do
  if ! grep -F "bulk_transfer/$case" <<< "$bulk_bench" | grep -qE 'thrpt: [0-9.]+ [KMG]iB/s'; then
    echo "bench bulk_transfer/$case missing or lacks a bytes throughput row" >&2
    exit 1
  fi
done
if ! grep -q "bulk_batched_speedup: PASS" <<< "$bulk_bench"; then
  echo "bulk_transfer bench did not print its PASS verdict" >&2
  exit 1
fi
echo "ok: batched bulk transfer at least 1.5x per-record at depth 16"

echo "== flood figure + admission gate tests + bench smoke =="
# The admission-control layer (DESIGN.md §14) must emit all four flood-
# ablation series in SMOKE fidelity; the deterministic sim gate (flood
# with admission on within 1.2x of the unflooded p99, the same flood
# without admission at >= 2x) and the real-stack flood regression suite
# must run and pass; and the handshake bench must reach its challenge-
# economics verdict (challenge >= 50x cheaper than a full handshake,
# asserted inside the bench).
flood_fig=$(cargo run --release --offline -p qtls-sim --bin figures -- smoke flood)
for series in "est p99 ms" "est K rps" "chal K/s" "flood hs/s"; do
  if ! grep -qF "$series" <<< "$flood_fig"; then
    echo "flood figure missing series: $series" >&2
    exit 1
  fi
done
echo "ok: flood figure emits all admission-ablation series"
flood_gate=$(cargo test --offline -p qtls-sim --lib \
  admission_absorbs_handshake_flood 2>&1)
if ! grep -q "test result: ok. 1 passed" <<< "$flood_gate"; then
  echo "sim flood-admission gate test did not run and pass" >&2
  exit 1
fi
echo "ok: sim gate holds (admission <=1.2x baseline p99; no admission >=2x)"
flood_suite=$(cargo test --offline -p qtls-server --test flood 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$flood_suite"; then
  echo "real-stack flood regression suite did not run and pass" >&2
  exit 1
fi
echo "ok: real-stack flood suite passes (challenge/retry, caps, sheds, drain)"
admission_bench=$(cargo bench --offline -p qtls-bench --bench handshake -- admission)
if ! grep -q "admission_challenge_cheap: PASS" <<< "$admission_bench"; then
  echo "admission bench did not print its PASS verdict" >&2
  exit 1
fi
echo "ok: challenge mint+verify at least 50x cheaper than a full handshake"

echo "== scheduling figure + gate tests + bench verdicts =="
# The cluster-scheduling plane (DESIGN.md §15) must emit every queue-
# discipline series in SMOKE fidelity; the deterministic sim gate
# (dFCFS+steal beats round-robin p99 on the skewed mix), the scheduling
# unit tests, the steal/drain cluster regressions, the dispatch/steal
# property tests and the QAT shard-rebalance tests must all pass; and
# the scheduling bench must reach its three verdicts (sim p99 speedup
# >= 1.25x vs round-robin; least-loaded worst-worker byte share
# <= 0.75x of round-robin's under the stride-heavy mix; steals observed
# under throttled accepts).
sched_fig=$(cargo run --release --offline -p qtls-sim --bin figures -- smoke scheduling)
for series in "rr p99 ms" "cfcfs p99 ms" "dfcfs p99 ms" "dfcfs+steal p99 ms" "dfcfs+steal steals/s"; do
  if ! grep -qF "$series" <<< "$sched_fig"; then
    echo "scheduling figure missing series: $series" >&2
    exit 1
  fi
done
echo "ok: scheduling figure emits all discipline series"
sched_gate=$(cargo test --offline -p qtls-sim --lib \
  scheduling_ablation_steal_beats_round_robin 2>&1)
if ! grep -q "test result: ok. 1 passed" <<< "$sched_gate"; then
  echo "sim scheduling gate test did not run and pass" >&2
  exit 1
fi
echo "ok: sim gate holds (dFCFS+steal beats round-robin p99)"
sched_unit=$(cargo test --offline -p qtls-server --lib sched 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$sched_unit"; then
  echo "scheduling-plane unit tests did not run and pass" >&2
  exit 1
fi
sched_steal=$(cargo test --offline -p qtls-server --lib steal 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$sched_steal"; then
  echo "steal regression tests did not run and pass" >&2
  exit 1
fi
sched_drain=$(cargo test --offline -p qtls-server --lib drain 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$sched_drain"; then
  echo "drain-signal regression tests did not run and pass" >&2
  exit 1
fi
echo "ok: scheduling unit + steal + drain-signal regressions pass"
sched_prop=$(cargo test --offline -p qtls --test proptest_framework -- \
  least_loaded_dispatch_is_argmin \
  steal_half_conserves_and_never_duplicates_sockets 2>&1)
if ! grep -q "test result: ok. 2 passed" <<< "$sched_prop"; then
  echo "scheduling property tests did not run and pass" >&2
  exit 1
fi
echo "ok: dispatch-argmin and steal-half-conservation properties hold"
rebalance_suite=$(cargo test --offline -p qtls-qat --lib rebalance 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$rebalance_suite"; then
  echo "QAT shard-rebalance tests did not run and pass" >&2
  exit 1
fi
echo "ok: shard rebalancing migrates only quiescent pairs and completes work"
sched_bench=$(cargo bench --offline -p qtls-bench --bench scheduling)
for verdict in "scheduling_speedup: PASS" "scheduling_steal: PASS" "scheduling_balance: PASS"; do
  if ! grep -q "$verdict" <<< "$sched_bench"; then
    echo "scheduling bench did not print: $verdict" >&2
    exit 1
  fi
done
if [ ! -s results/BENCH_scheduling.json ]; then
  echo "scheduling bench did not persist results/BENCH_scheduling.json" >&2
  exit 1
fi
echo "ok: scheduling bench verdicts (sim p99, balance, steals) + JSON persisted"

echo "== metrics plane smoke =="
# Boot a sharded QTLS worker with qat_metrics on, scrape /metrics over
# a real in-band TLS connection, and validate the exposition with the
# in-repo mini-parser (the bin panics on any violation). Every family
# the scrape declares must appear in the single obs::registry constant
# list — no drive-by metric names outside the registry.
metrics_page=$(cargo run --release --offline -p qtls-server --bin metrics_smoke)
if ! grep -q "metrics_smoke: OK" <<< "$metrics_page"; then
  echo "metrics_smoke did not reach its OK verdict" >&2
  exit 1
fi
obs_registry=crates/core/src/obs.rs
scraped=$(grep '^# TYPE ' <<< "$metrics_page" | awk '{print $3}' | sort -u)
if [ -z "$scraped" ]; then
  echo "metrics_smoke scraped no # TYPE families" >&2
  exit 1
fi
while read -r fam; do
  if ! grep -qF "\"$fam\"" "$obs_registry"; then
    echo "scraped family $fam missing from obs::registry::METRIC_NAMES" >&2
    exit 1
  fi
done <<< "$scraped"
echo "ok: metrics smoke scrape parses; $(wc -l <<< "$scraped") families all in obs::registry"

echo "== obs overhead guard =="
# The observability plane must stay under its 2% roundtrip budget; the
# bench asserts it internally and prints a greppable verdict.
obs_bench=$(cargo bench --offline -p qtls-bench --bench framework -- obs_overhead)
if ! grep -q "obs_overhead: PASS" <<< "$obs_bench"; then
  echo "obs_overhead bench did not print its PASS verdict" >&2
  exit 1
fi
echo "ok: obs overhead under 2% enabled-vs-disabled"

echo "== connection tracing gates =="
# End-to-end tracing: the integration suite validates the /trace Chrome
# trace-event export with the in-repo mini-parser, sum-checks the
# attribution (stage durations cover each connection's wall time within
# 5%), proves the admission round trip shows up in the span trees, and
# pins the anomaly sweep to its wall-clock cadence.
trace_suite=$(cargo test --offline -p qtls-server --test trace 2>&1)
if ! grep -qE "test result: ok. [1-9][0-9]* passed; 0 failed" <<< "$trace_suite"; then
  echo "tracing integration suite did not run and pass" >&2
  exit 1
fi
echo "ok: /trace export valid; span trees sum-checked; anomaly cadence on wall clock"
trace_prop=$(cargo test --offline -p qtls --test proptest_framework -- \
  span_trees_nest_and_idle_fill_makes_coverage_exact \
  trace_sampling_is_exact_and_off_costs_nothing 2>&1)
if ! grep -q "test result: ok. 2 passed" <<< "$trace_prop"; then
  echo "tracing property tests did not run and pass" >&2
  exit 1
fi
echo "ok: span nesting/coverage and sampling-exactness properties hold"
reg_audit=$(cargo test --offline -p qtls-server --test profiles -- \
  every_kv_counter_has_a_registered_prometheus_family \
  stub_status_kv_is_a_superset_of_the_human_page 2>&1)
if ! grep -q "test result: ok. 2 passed" <<< "$reg_audit"; then
  echo "metrics registry audit tests did not run and pass" >&2
  exit 1
fi
echo "ok: every stub_status counter maps to a registered Prometheus family"
# The tracing plane must stay under its 2% budget at the production
# 1-in-64 sampling rate; the bench asserts it internally, prints a
# greppable verdict, and persists the paired A/B numbers.
trace_bench=$(cargo bench --offline -p qtls-bench --bench framework -- tracing)
if ! grep -q "trace_overhead: PASS" <<< "$trace_bench"; then
  echo "tracing bench did not print its PASS verdict" >&2
  exit 1
fi
if [ ! -s results/BENCH_tracing.json ]; then
  echo "tracing bench did not persist results/BENCH_tracing.json" >&2
  exit 1
fi
echo "ok: tracing overhead under 2% at 1-in-64 + JSON persisted"
# A loaded run's trace artifact: the loadgen CLI drives a 2-worker
# cluster and archives the /trace export via --trace-dump.
trace_dump=results/trace_loadgen.json
dump_out=$(cargo run --release --offline -p qtls-server --bin loadgen -- \
  --clients 4 --duration-ms 500 --requests 2 --trace-sample 4 \
  --trace-dump "$trace_dump")
if ! grep -q "trace-dump: wrote" <<< "$dump_out"; then
  echo "loadgen --trace-dump did not write its artifact" >&2
  exit 1
fi
if [ ! -s "$trace_dump" ]; then
  echo "loadgen --trace-dump left an empty $trace_dump" >&2
  exit 1
fi
echo "ok: loadgen --trace-dump archived a loaded run's span trees"

echo "== loadgen unwrap guard =="
# The load generator must never panic on a malformed or partial
# response: no unwrap() in its non-test code (the test module starts at
# the #[cfg(test)] marker).
loadgen=crates/server/src/loadgen.rs
if sed '/#\[cfg(test)\]/,$d' "$loadgen" | grep -nF '.unwrap()' ; then
  echo "unwrap() in non-test $loadgen (see above)" >&2
  exit 1
fi
echo "ok: no unwrap() in non-test $loadgen"

echo "== dependency hermeticity =="
# Workspace path crates render as `name vX.Y.Z (/abs/path)`; anything
# from a registry has no source path. Check the default feature set and
# --all-features (the proptest / rand-rng features must stay dep-free).
check_tree() {
  local label="$1"; shift
  local bad
  bad=$(cargo tree -e normal --offline --prefix none "$@" | sort -u \
        | grep -v ' (/' | grep -v '^$' || true)
  if [ -n "$bad" ]; then
    echo "non-workspace dependencies in $label:" >&2
    echo "$bad" >&2
    exit 1
  fi
  echo "ok: $label resolves to workspace crates only"
}
check_tree "default features"
check_tree "--all-features" --all-features

echo "check.sh: all green"
